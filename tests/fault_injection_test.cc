// FaultStream/FaultSchedule unit coverage: every scripted fault kind over
// a socketpair, trace determinism from a seed, pass-through behaviour when
// no schedule is attached, and the client/server partial-I/O resume paths
// (byte-at-a-time delivery through a live connection must not desync the
// protocol on either side).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "clients/server_runner.h"
#include "transport/fault_stream.h"

namespace af {
namespace {

struct FaultPair {
  FaultStream faulty;   // wrapped end under test
  FdStream peer;        // raw far end
};

FaultPair MakePair(std::shared_ptr<FaultSchedule> schedule) {
  auto pair = CreateStreamPair();
  EXPECT_TRUE(pair.ok());
  FaultPair out;
  out.faulty = FaultStream(std::move(pair.value().first), std::move(schedule));
  out.peer = std::move(pair.value().second);
  return out;
}

bool TraceContains(const FaultSchedule& schedule, const std::string& needle) {
  return schedule.TraceString().find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Fragmentation

TEST(FaultScheduleTest, SplitReadsAtScriptedOffsets) {
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->SplitReadAt(5);
  schedule->SplitReadAt(8);
  FaultPair fp = MakePair(schedule);

  const char msg[] = "hello world!";  // 12 bytes
  ASSERT_TRUE(fp.peer.WriteAll(msg, 12).ok());

  char buf[16] = {};
  IoResult r = fp.faulty.Read(buf, sizeof(buf));
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 5u);  // cut at the first boundary
  r = fp.faulty.Read(buf + 5, sizeof(buf) - 5);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 3u);  // 5 -> 8
  r = fp.faulty.Read(buf + 8, sizeof(buf) - 8);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 4u);  // the rest
  EXPECT_EQ(std::memcmp(buf, msg, 12), 0);
  EXPECT_TRUE(TraceContains(*schedule, "read@0 short=5"));
  EXPECT_TRUE(TraceContains(*schedule, "read@5 short=3"));
}

TEST(FaultScheduleTest, MaxChunkForcesByteAtATime) {
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->SetMaxReadChunk(1);
  FaultPair fp = MakePair(schedule);

  ASSERT_TRUE(fp.peer.WriteAll("abcd", 4).ok());
  char buf[4] = {};
  for (int i = 0; i < 4; ++i) {
    const IoResult r = fp.faulty.Read(buf + i, 4 - i);
    ASSERT_EQ(r.status, IoStatus::kOk);
    ASSERT_EQ(r.bytes, 1u);
  }
  EXPECT_EQ(std::memcmp(buf, "abcd", 4), 0);
}

TEST(FaultScheduleTest, SplitWritesAtScriptedOffsets) {
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->SplitWriteAt(3);
  FaultPair fp = MakePair(schedule);

  IoResult r = fp.faulty.Write("abcdef", 6);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 3u);  // the caller must resume from here
  r = fp.faulty.Write("def", 3);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 3u);

  char buf[6] = {};
  ASSERT_TRUE(fp.peer.ReadAll(buf, 6).ok());
  EXPECT_EQ(std::memcmp(buf, "abcdef", 6), 0);
}

// ---------------------------------------------------------------------------
// Flow control

TEST(FaultScheduleTest, WouldBlockBurstThenData) {
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->WouldBlockReadAt(0, 3);
  FaultPair fp = MakePair(schedule);

  ASSERT_TRUE(fp.peer.WriteAll("xy", 2).ok());
  char buf[2] = {};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(fp.faulty.Read(buf, 2).status, IoStatus::kWouldBlock);
  }
  const IoResult r = fp.faulty.Read(buf, 2);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 2u);
  EXPECT_EQ(schedule->faults_applied(), 3u);
}

TEST(FaultScheduleTest, MidStreamWouldBlockTruncatesFirst) {
  // A stall scripted at offset 4 must not let a single read sail past it.
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->WouldBlockWriteAt(4, 1);
  FaultPair fp = MakePair(schedule);

  IoResult r = fp.faulty.Write("abcdefgh", 8);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 4u);  // capped at the pending stall
  EXPECT_EQ(fp.faulty.Write("efgh", 4).status, IoStatus::kWouldBlock);
  r = fp.faulty.Write("efgh", 4);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 4u);
}

// ---------------------------------------------------------------------------
// Data integrity

TEST(FaultScheduleTest, ReadCorruptionFlipsExactlyOneByte) {
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->CorruptReadByte(6, 0xFF);
  FaultPair fp = MakePair(schedule);

  const char msg[] = "0123456789";
  ASSERT_TRUE(fp.peer.WriteAll(msg, 10).ok());
  uint8_t buf[10] = {};
  ASSERT_TRUE(fp.faulty.ReadAll(buf, 10).ok());
  for (int i = 0; i < 10; ++i) {
    if (i == 6) {
      EXPECT_EQ(buf[i], static_cast<uint8_t>(msg[i] ^ 0xFF));
    } else {
      EXPECT_EQ(buf[i], static_cast<uint8_t>(msg[i]));
    }
  }
  EXPECT_TRUE(TraceContains(*schedule, "read@6 corrupt^FF"));
}

TEST(FaultScheduleTest, WriteCorruptionLeavesCallerBufferIntact) {
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->CorruptWriteByte(2, 0x01);
  FaultPair fp = MakePair(schedule);

  const char msg[] = "ABCD";
  ASSERT_TRUE(fp.faulty.WriteAll(msg, 4).ok());
  EXPECT_EQ(std::memcmp(msg, "ABCD", 4), 0);  // corruption staged on a copy

  char buf[4] = {};
  ASSERT_TRUE(fp.peer.ReadAll(buf, 4).ok());
  EXPECT_EQ(buf[0], 'A');
  EXPECT_EQ(buf[1], 'B');
  EXPECT_EQ(buf[2], 'C' ^ 0x01);
  EXPECT_EQ(buf[3], 'D');
  EXPECT_TRUE(TraceContains(*schedule, "write@2 corrupt^01"));
}

// ---------------------------------------------------------------------------
// Connection lifetime

TEST(FaultScheduleTest, EofAtEveryPrefix) {
  const char msg[] = "audio-file-protocol";
  const size_t n = sizeof(msg) - 1;
  for (size_t cut = 0; cut <= n; ++cut) {
    auto schedule = std::make_shared<FaultSchedule>();
    schedule->CutReadAt(cut);
    FaultPair fp = MakePair(schedule);
    ASSERT_TRUE(fp.peer.WriteAll(msg, n).ok());

    std::vector<uint8_t> buf(n);
    size_t got = 0;
    for (;;) {
      const IoResult r = fp.faulty.Read(buf.data() + got, n - got);
      if (r.status == IoStatus::kClosed) {
        break;
      }
      ASSERT_EQ(r.status, IoStatus::kOk);
      got += r.bytes;
    }
    EXPECT_EQ(got, cut);  // exactly the prefix, then clean EOF
    EXPECT_EQ(std::memcmp(buf.data(), msg, cut), 0);
    // EOF is sticky.
    EXPECT_EQ(fp.faulty.Read(buf.data(), 1).status, IoStatus::kClosed);
  }
}

TEST(FaultScheduleTest, ResetMidMessageIsSticky) {
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->ResetWriteAt(4);
  FaultPair fp = MakePair(schedule);

  IoResult r = fp.faulty.Write("abcdefgh", 8);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 4u);  // truncated at the upcoming reset
  EXPECT_EQ(fp.faulty.Write("efgh", 4).status, IoStatus::kError);
  EXPECT_EQ(fp.faulty.Write("efgh", 4).status, IoStatus::kError);
  EXPECT_TRUE(TraceContains(*schedule, "write@4 reset"));
}

// ---------------------------------------------------------------------------
// Timing

TEST(FaultScheduleTest, DelayRoutedThroughLatencyHook) {
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->DelayReadAt(4, 1000);
  uint64_t hook_total = 0;
  schedule->SetLatencyHook([&hook_total](uint64_t usec) { hook_total += usec; });
  FaultPair fp = MakePair(schedule);

  ASSERT_TRUE(fp.peer.WriteAll("abcdefgh", 8).ok());
  char buf[8] = {};
  IoResult r = fp.faulty.Read(buf, 8);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 4u);  // transfer stops at the pending delay
  EXPECT_EQ(hook_total, 0u);
  r = fp.faulty.Read(buf + 4, 4);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 4u);
  EXPECT_EQ(hook_total, 1000u);  // no real sleep: the hook absorbed it
  EXPECT_TRUE(TraceContains(*schedule, "read@4 delay=1000us"));
}

// ---------------------------------------------------------------------------
// Determinism and pass-through

TEST(FaultScheduleTest, SameSeedSameTrace) {
  auto run = [](uint64_t seed) {
    FaultSchedule::RandomProfile profile;
    profile.p_short = 0.5;
    profile.p_would_block = 0.3;
    profile.p_delay = 0.0;  // keep the walk sleep-free
    auto schedule = FaultSchedule::Random(seed, profile);
    FaultPair fp = MakePair(schedule);
    std::vector<uint8_t> payload(256);
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<uint8_t>(i);
    }
    EXPECT_TRUE(fp.peer.WriteAll(payload.data(), payload.size()).ok());
    std::vector<uint8_t> got(payload.size());
    EXPECT_TRUE(fp.faulty.ReadAll(got.data(), got.size()).ok());
    EXPECT_EQ(got, payload);  // splits and stalls never lose bytes
    return schedule->TraceString();
  };
  const std::string a = run(42);
  const std::string b = run(42);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  const std::string c = run(43);
  EXPECT_NE(a, c);  // a different walk (true for these seeds)
}

TEST(FaultStreamTest, NoSchedulePassesThrough) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  FaultStream plain(std::move(pair.value().first));  // implicit, no schedule
  FdStream peer = std::move(pair.value().second);

  EXPECT_EQ(plain.schedule(), nullptr);
  ASSERT_TRUE(peer.WriteAll("pass", 4).ok());
  char buf[4] = {};
  const IoResult r = plain.Read(buf, 4);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 4u);
  ASSERT_TRUE(plain.WriteAll("back", 4).ok());
  ASSERT_TRUE(peer.ReadAll(buf, 4).ok());
  EXPECT_EQ(std::memcmp(buf, "back", 4), 0);
}

// ---------------------------------------------------------------------------
// Partial-I/O resume through a live server

class FaultResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerRunner::Config config;
    config.with_codec = true;
    config.realtime = false;
    runner_ = ServerRunner::Start(config);
    ASSERT_NE(runner_, nullptr);
  }

  std::unique_ptr<ServerRunner> runner_;
};

TEST_F(FaultResumeTest, ServerResumesByteAtATimeIO) {
  // Every server-side read and write is one byte: ClientConn::ReadAvailable
  // must reassemble requests and FlushOutput must resume partial replies
  // without desynchronizing the stream.
  auto server_faults = std::make_shared<FaultSchedule>();
  server_faults->SetMaxReadChunk(1);
  server_faults->SetMaxWriteChunk(1);
  auto conn = runner_->ConnectInProcess(nullptr, server_faults);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  for (int i = 0; i < 20; ++i) {
    auto t = conn.value()->GetTime(0);
    ASSERT_TRUE(t.ok()) << "request " << i;
  }
  auto atom = conn.value()->InternAtom("BYTE_AT_A_TIME");
  ASSERT_TRUE(atom.ok());
  auto name = conn.value()->GetAtomName(atom.value());
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value(), "BYTE_AT_A_TIME");
}

TEST_F(FaultResumeTest, ClientResumesSplitReadsAndStalls) {
  // The client's transport staggers: short reads, stall bursts. AwaitReply
  // and the demultiplexer must reassemble the 32-byte units correctly.
  FaultSchedule::RandomProfile profile;
  profile.p_short = 0.5;
  profile.short_max = 3;
  profile.p_would_block = 0.3;
  profile.p_delay = 0.0;
  auto client_faults = FaultSchedule::Random(77, profile);
  auto conn = runner_->ConnectInProcess(client_faults, nullptr);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString()
                         << " trace: " << client_faults->TraceString();

  for (int i = 0; i < 50; ++i) {
    auto t = conn.value()->GetTime(0);
    ASSERT_TRUE(t.ok()) << "request " << i
                        << " trace: " << client_faults->TraceString();
  }
  EXPECT_GT(client_faults->faults_applied(), 0u);
}

TEST_F(FaultResumeTest, BothSidesFaultySimultaneously) {
  auto client_faults = std::make_shared<FaultSchedule>();
  client_faults->SetMaxReadChunk(2);
  auto server_faults = std::make_shared<FaultSchedule>();
  server_faults->SetMaxReadChunk(3);
  server_faults->SetMaxWriteChunk(5);
  auto conn = runner_->ConnectInProcess(client_faults, server_faults);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  auto atom = conn.value()->InternAtom("DOUBLE_FAULT");
  ASSERT_TRUE(atom.ok());
  auto rt = conn.value()->GetAtomName(atom.value());
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt.value(), "DOUBLE_FAULT");
}

}  // namespace
}  // namespace af
