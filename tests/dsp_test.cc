// Tone synthesis, DTMF, Goertzel detection, FFT, windows, resampler.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/dtmf.h"
#include "dsp/fft.h"
#include "dsp/g711.h"
#include "dsp/goertzel.h"
#include "dsp/power.h"
#include "dsp/resample.h"
#include "dsp/tones.h"
#include "dsp/window.h"

namespace af {
namespace {

TEST(TonesTest, SineTableEndpoints) {
  const auto& table = SineFloatTable();
  EXPECT_NEAR(table[0], 0.0f, 1e-6f);
  EXPECT_NEAR(table[kSineTableSize / 4], 1.0f, 1e-6f);
  EXPECT_NEAR(table[kSineTableSize / 2], 0.0f, 1e-5f);
  EXPECT_NEAR(table[3 * kSineTableSize / 4], -1.0f, 1e-6f);
  EXPECT_EQ(SineIntTable()[kSineTableSize / 4], 32767);
}

TEST(TonesTest, SingleToneFrequencyIsAccurate) {
  std::vector<float> buf(8000);
  SingleTone(440.0, 1.0, 8000, 0.0, buf);
  // Count zero crossings: a 440 Hz tone over one second has ~880.
  int crossings = 0;
  for (size_t i = 1; i < buf.size(); ++i) {
    if ((buf[i - 1] < 0) != (buf[i] < 0)) {
      ++crossings;
    }
  }
  EXPECT_NEAR(crossings, 880, 4);
}

TEST(TonesTest, PhaseContinuityAcrossBlocks) {
  std::vector<float> whole(512);
  SingleTone(700.0, 1.0, 8000, 0.0, whole);
  std::vector<float> first(256);
  std::vector<float> second(256);
  const double mid_phase = SingleTone(700.0, 1.0, 8000, 0.0, first);
  SingleTone(700.0, 1.0, 8000, mid_phase, second);
  for (size_t i = 0; i < 256; ++i) {
    EXPECT_FLOAT_EQ(whole[i], first[i]);
    EXPECT_FLOAT_EQ(whole[256 + i], second[i]);
  }
}

TEST(TonesTest, TonePairLevelIsCalibrated) {
  // Two tones at -13 dBm0 each sum to about -10 dBm0 total power.
  std::vector<uint8_t> tone(8000);
  TonePair({350, -13}, {440, -13}, 8000, 0, tone);
  EXPECT_NEAR(MulawBlockPowerDbm(tone), -10.0, 0.5);
}

TEST(TonesTest, GainRampLimitsOnset) {
  std::vector<uint8_t> ramped(800);
  TonePair({697, -4}, {1209, -2}, 8000, 80, ramped);
  // First samples must be quiet relative to the steady state.
  const double head = MulawBlockPowerDbm(std::span<const uint8_t>(ramped.data(), 16));
  const double mid = MulawBlockPowerDbm(std::span<const uint8_t>(ramped.data() + 400, 200));
  EXPECT_LT(head, mid - 10.0);
}

TEST(DtmfTest, Table7Cadence) {
  EXPECT_EQ(DialToneSpec().time_off_ms, 0u);  // continuous
  EXPECT_EQ(RingbackSpec().time_on_ms, 1000u);
  EXPECT_EQ(RingbackSpec().time_off_ms, 3000u);
  EXPECT_EQ(BusySpec().time_on_ms, 500u);
  EXPECT_EQ(FastBusySpec().time_on_ms, 250u);
}

TEST(DtmfTest, DigitFrequencies) {
  const auto five = DtmfSpec('5');
  ASSERT_TRUE(five.has_value());
  EXPECT_EQ(five->f1_hz, 770.0);
  EXPECT_EQ(five->f2_hz, 1336.0);
  const auto pound = DtmfSpec('#');
  ASSERT_TRUE(pound.has_value());
  EXPECT_EQ(pound->f1_hz, 941.0);
  EXPECT_EQ(pound->f2_hz, 1477.0);
  EXPECT_FALSE(DtmfSpec('x').has_value());
}

TEST(DtmfTest, CallProgressCadence) {
  // Busy: 500 ms on / 500 ms off. Over 2 s: tone, silence, tone, silence.
  const auto busy = SynthesizeCallProgress(BusySpec(), 2.0, 8000);
  ASSERT_EQ(busy.size(), 16000u);
  const auto power_at = [&](size_t start) {
    return MulawBlockPowerDbm(std::span<const uint8_t>(busy.data() + start, 2000));
  };
  EXPECT_GT(power_at(1000), -15.0);    // first on period
  EXPECT_EQ(power_at(4500), kPowerFloorDbm);  // first off period
  EXPECT_GT(power_at(9000), -15.0);    // second on period
  EXPECT_EQ(power_at(12500), kPowerFloorDbm);

  // Dialtone is continuous: loud everywhere.
  const auto dial = SynthesizeCallProgress(DialToneSpec(), 1.5, 8000);
  for (size_t start = 500; start + 2000 <= dial.size(); start += 2000) {
    EXPECT_GT(MulawBlockPowerDbm(std::span<const uint8_t>(dial.data() + start, 2000)),
              -15.0)
        << "at " << start;
  }

  // Ringback (1 s on / 3 s off): mostly silence.
  const auto ring = SynthesizeCallProgress(RingbackSpec(), 8.0, 8000);
  size_t loud = 0;
  for (size_t start = 0; start + 1000 <= ring.size(); start += 1000) {
    if (MulawBlockPowerDbm(std::span<const uint8_t>(ring.data() + start, 1000)) > -30.0) {
      ++loud;
    }
  }
  EXPECT_NEAR(loud, 16u, 2u);  // 2 s loud out of 8 s, in 1/8 s blocks
}

TEST(DtmfTest, DialStringLength) {
  // Each digit: 50 ms on + 50 ms off = 800 samples at 8 kHz.
  const auto audio = SynthesizeDialString("555", 8000);
  EXPECT_EQ(audio.size(), 3u * 800u);
}

class DtmfDetectorDigits : public ::testing::TestWithParam<char> {};

TEST_P(DtmfDetectorDigits, DetectsEveryKey) {
  const char digit = GetParam();
  std::string s(1, digit);
  const auto audio = SynthesizeDialString(s, 8000);
  DtmfDetector detector(8000);
  detector.FeedMulaw(audio);
  EXPECT_EQ(detector.Digits(), s);
}

INSTANTIATE_TEST_SUITE_P(AllSixteenKeys, DtmfDetectorDigits,
                         ::testing::Values('0', '1', '2', '3', '4', '5', '6', '7', '8', '9',
                                           '*', '#', 'A', 'B', 'C', 'D'));

TEST(DtmfDetectorTest, DecodesFullNumber) {
  const auto audio = SynthesizeDialString("18005551212", 8000);
  DtmfDetector detector(8000);
  detector.FeedMulaw(audio);
  EXPECT_EQ(detector.Digits(), "18005551212");
}

TEST(DtmfDetectorTest, RepeatedDigitNeedsGap) {
  const auto audio = SynthesizeDialString("99", 8000);
  DtmfDetector detector(8000);
  detector.FeedMulaw(audio);
  EXPECT_EQ(detector.Digits(), "99");  // the 50 ms gap separates presses
}

TEST(DtmfDetectorTest, RejectsSpeechlikeAndCallProgress) {
  // Dialtone (350+440) must not decode as a digit.
  std::vector<uint8_t> tone(4000);
  TonePair({350, -13}, {440, -13}, 8000, 0, tone);
  DtmfDetector detector(8000);
  detector.FeedMulaw(tone);
  EXPECT_TRUE(detector.Digits().empty());
}

TEST(DtmfDetectorTest, RejectsSilence) {
  std::vector<uint8_t> silence(8000, kMulawSilence);
  DtmfDetector detector(8000);
  detector.FeedMulaw(silence);
  EXPECT_TRUE(detector.Digits().empty());
}

TEST(GoertzelTest, DetectsTargetBin) {
  std::vector<float> tone(205);
  SingleTone(697.0, 0.5, 8000, 0.0, tone);
  Goertzel on_target(697.0, 8000);
  Goertzel off_target(1336.0, 8000);
  on_target.Process(tone);
  off_target.Process(tone);
  EXPECT_GT(on_target.Magnitude2(), 100.0 * off_target.Magnitude2());
}

TEST(FftTest, ImpulseIsFlat) {
  std::vector<std::complex<float>> data(64);
  data[0] = {1.0f, 0.0f};
  Fft(data);
  for (const auto& bin : data) {
    EXPECT_NEAR(std::abs(bin), 1.0f, 1e-5f);
  }
}

TEST(FftTest, ForwardInverseRoundTrip) {
  std::vector<std::complex<float>> data(128);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = {std::sin(0.37f * i), std::cos(0.11f * i)};
  }
  const auto original = data;
  Fft(data, false);
  Fft(data, true);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-4f);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-4f);
  }
}

TEST(FftTest, SinePeaksAtTheRightBin) {
  const size_t n = 256;
  std::vector<float> tone(n);
  // Bin 32: frequency = 32 * rate / 256.
  for (size_t i = 0; i < n; ++i) {
    tone[i] = std::sin(2.0 * std::numbers::pi * 32.0 * i / n);
  }
  const auto mags = RealMagnitudeSpectrum(tone);
  size_t peak = 0;
  for (size_t i = 1; i < mags.size(); ++i) {
    if (mags[i] > mags[peak]) {
      peak = i;
    }
  }
  EXPECT_EQ(peak, 32u);
}

TEST(WindowTest, Shapes) {
  const auto hamming = MakeWindow(WindowType::kHamming, 64);
  EXPECT_NEAR(hamming[0], 0.08f, 1e-3f);
  EXPECT_NEAR(hamming[32], 1.0f, 0.01f);
  const auto hanning = MakeWindow(WindowType::kHanning, 64);
  EXPECT_NEAR(hanning[0], 0.0f, 1e-5f);
  const auto tri = MakeWindow(WindowType::kTriangular, 65);
  EXPECT_NEAR(tri[32], 1.0f, 1e-5f);
  EXPECT_NEAR(tri[0], 0.0f, 1e-5f);
  EXPECT_EQ(WindowTypeFromName("hamming"), WindowType::kHamming);
  EXPECT_EQ(WindowTypeFromName("bogus"), WindowType::kNone);
}

TEST(ResampleTest, IdentityRatio) {
  // The resampler holds back the newest sample as interpolation history,
  // so identity conversion emits the stream delayed by one sample.
  LinearResampler resampler(8000, 8000);
  std::vector<int16_t> in = {0, 100, 200, 300, 400};
  const auto out = resampler.Process(in);
  ASSERT_EQ(out.size(), in.size() - 1);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], in[i]);
  }
  const auto more = resampler.Process(std::vector<int16_t>{500});
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0], 400);  // the held-back sample arrives next
}

TEST(ResampleTest, UpsamplePreservesShape) {
  LinearResampler resampler(8000, 16000);
  std::vector<int16_t> in(800);
  for (size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<int16_t>(10000 * std::sin(2.0 * std::numbers::pi * 100 * i / 8000.0));
  }
  const auto out = resampler.Process(in);
  EXPECT_NEAR(out.size(), 1600u, 2u);
  // Zero crossings double in count domain but frequency is unchanged.
  int crossings = 0;
  for (size_t i = 1; i < out.size(); ++i) {
    if ((out[i - 1] < 0) != (out[i] < 0)) {
      ++crossings;
    }
  }
  EXPECT_NEAR(crossings, 20, 2);
}

TEST(ResampleTest, StreamingMatchesOneShot) {
  std::vector<int16_t> in(1000);
  for (size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<int16_t>(i * 13 % 2048);
  }
  LinearResampler whole(8000, 11025);
  const auto expect = whole.Process(in);

  LinearResampler stream(8000, 11025);
  std::vector<int16_t> got;
  for (size_t start = 0; start < in.size(); start += 173) {
    const size_t n = std::min<size_t>(173, in.size() - start);
    const auto part = stream.Process(std::span<const int16_t>(in.data() + start, n));
    got.insert(got.end(), part.begin(), part.end());
  }
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "at " << i;
  }
}

}  // namespace
}  // namespace af
