// The conference-bridge battery (ctest -L bridge): the shared-device
// fan-in path from kernel to conference.
//
// Layer by layer: the fused gain+mix kernels against their scalar
// references; K-party fan-in into a manually clocked device, bit-exact
// across the {fused, two-pass} x {SIMD, scalar} grid; per-party gain
// golden vectors; the preempt-vs-mix counter split, fan-in high water,
// and samples-lost (discard) accounting; Goertzel DTMF detection at
// hostile block boundaries and through 8 kHz <-> 48 kHz resampling; and
// the abridge core end to end over a live server - floor grabs driven by
// decoded key presses, cross-shard fan-in with no lost mailbox plays
// (re-run under AF_SHARDS=4 on both poller backends), and a seeded
// kill-one-party-mid-mix torture via FaultStream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <random>

#include "client/audio_context.h"
#include "clients/cores.h"
#include "clients/server_runner.h"
#include "devices/codec_device.h"
#include "devices/hifi_device.h"
#include "dsp/dtmf.h"
#include "dsp/g711.h"
#include "dsp/goertzel.h"
#include "dsp/mix.h"
#include "dsp/resample.h"
#include "dsp/simd.h"
#include "proto/requests.h"
#include "proto/stats.h"

namespace af {
namespace {

size_t DeviceCounterIndex(const char* name) {
  for (size_t i = 0; i < kNumDeviceCounters; ++i) {
    if (std::strcmp(kDeviceCounterNames[i], name) == 0) {
      return i;
    }
  }
  ADD_FAILURE() << "unknown device counter " << name;
  return 0;
}

size_t ServerCounterIndex(const char* name) {
  for (size_t i = 0; i < kNumServerCounters; ++i) {
    if (std::strcmp(kServerCounterNames[i], name) == 0) {
      return i;
    }
  }
  ADD_FAILURE() << "unknown server counter " << name;
  return 0;
}

int ShardsFromEnv() {
  const char* s = std::getenv("AF_SHARDS");
  const int n = s != nullptr ? std::atoi(s) : 1;
  return n > 0 ? n : 1;
}

// --- fused kernels against their scalar references ---------------------------

TEST(FusedKernelTest, MulawGainMixMatchesScalarReference) {
  std::mt19937 rng(0x6a11);
  std::vector<uint8_t> dst(1337), src(1337);
  for (const int db : {-18, -6, -1, 3, 12}) {
    for (auto& v : dst) v = static_cast<uint8_t>(rng());
    for (auto& v : src) v = static_cast<uint8_t>(rng());
    std::vector<uint8_t> expect = dst;
    MixTableGainBlockScalar(MulawMixTable(), MulawGainTable(db), expect.data(),
                            src.data(), src.size());
    std::vector<uint8_t> got = dst;
    MixMulawGainBlock(got, src, MulawGainTable(db));
    EXPECT_EQ(got, expect) << "mu-law fused mix diverged at " << db << " dB";

    std::vector<uint8_t> expect_a = dst;
    MixTableGainBlockScalar(AlawMixTable(), AlawGainTable(db), expect_a.data(),
                            src.data(), src.size());
    std::vector<uint8_t> got_a = dst;
    MixAlawGainBlock(got_a, src, AlawGainTable(db));
    EXPECT_EQ(got_a, expect_a) << "A-law fused mix diverged at " << db << " dB";
  }
}

TEST(FusedKernelTest, MulawGainMixEqualsTwoPassForm) {
  // The fused kernel chains the gain table into the mix table; the two-pass
  // form stages the scaled source first. Same tables, same bytes.
  std::mt19937 rng(0x6a12);
  std::vector<uint8_t> dst(997), src(997);
  for (auto& v : dst) v = static_cast<uint8_t>(rng());
  for (auto& v : src) v = static_cast<uint8_t>(rng());
  const int db = -12;
  std::vector<uint8_t> staged(src.size());
  ApplyMulawGain(db, src, staged);
  std::vector<uint8_t> two_pass = dst;
  MixMulawBlock(two_pass, staged);
  std::vector<uint8_t> fused = dst;
  MixMulawGainBlock(fused, src, MulawGainTable(db));
  EXPECT_EQ(fused, two_pass);
}

TEST(FusedKernelTest, Lin16GainMixSimdMatchesScalar) {
  std::mt19937 rng(0x6a13);
  std::vector<int16_t> base(1031), src(1031);
  for (auto& v : base) v = static_cast<int16_t>(rng());
  for (auto& v : src) v = static_cast<int16_t>(rng());
  // Attenuation and unity run the SSE2/NEON lane; boost (> 32767) falls
  // back to the scalar int64 form. Edge factors included.
  for (const int32_t q15 : {0, 1, 123, 8192, 16384, 32767, 32768, 40000, 65536}) {
    std::vector<int16_t> expect = base;
    MixLin16GainBlockScalar(expect, src, q15);
    SetSimdEnabled(true);
    std::vector<int16_t> got = base;
    MixLin16GainBlock(got, src, q15);
    SetSimdEnabled(false);
    std::vector<int16_t> scalar_path = base;
    MixLin16GainBlock(scalar_path, src, q15);
    SetSimdEnabled(true);
    EXPECT_EQ(got, expect) << "SIMD fused lin16 mix diverged at q15=" << q15;
    EXPECT_EQ(scalar_path, expect) << "scalar fused lin16 mix diverged at q15=" << q15;
  }
  // The saturation edge the widen/shift/pack lane must get right:
  // full-scale negative through max attenuation, then the saturating add.
  std::vector<int16_t> edge_dst(16, -32768), edge_src(16, -32768);
  std::vector<int16_t> expect = edge_dst;
  MixLin16GainBlockScalar(expect, edge_src, 32767);
  std::vector<int16_t> got = edge_dst;
  MixLin16GainBlock(got, edge_src, 32767);
  EXPECT_EQ(got, expect);
}

TEST(FusedKernelTest, Lin16GainQ15MatchesDbForm) {
  // GainQ15 is the single source of the scale factor: the standalone gain
  // stage and the fused kernel must agree bit for bit.
  std::vector<int16_t> src(509);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<int16_t>(static_cast<int>(i * 131) - 32768);
  }
  for (const double db : {-18.0, -6.0, 2.5}) {
    std::vector<int16_t> via_db(src.size()), via_q15(src.size());
    ApplyLin16Gain(db, src, via_db);
    ApplyLin16GainQ15(GainQ15(db), src, via_q15);
    EXPECT_EQ(via_db, via_q15) << "at " << db << " dB";
  }
}

// --- K-party fan-in, bit-exact across the kernel grid ------------------------

std::vector<uint8_t> PartyTone(size_t party, size_t frames) {
  std::vector<uint8_t> tone(frames);
  for (size_t i = 0; i < frames; ++i) {
    tone[i] = MulawFromLinear16(
        static_cast<int16_t>(4000.0 * std::sin(0.02 * (party + 1) * i)));
  }
  return tone;
}

// One deterministic conference block: four mu-law parties with distinct
// gains play the same region of a fresh manually clocked CODEC device.
// Returns what the DAC heard.
std::vector<uint8_t> HeardMulawFanIn(bool fused, bool simd) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  auto dev = CodecDevice::Create(clock);
  auto sink = std::make_shared<CaptureSink>();
  dev->sim().SetSink(sink);
  dev->SetFusedGain(fused);
  SetSimdEnabled(simd);
  dev->Update();

  const int gains[] = {0, -6, -12, 6};
  const size_t frames = 1200;
  for (size_t p = 0; p < 4; ++p) {
    ServerAC ac;
    ac.id = static_cast<uint32_t>(p + 1);
    ac.device = dev.get();
    ACAttributes attrs;
    attrs.channels = dev->desc().play_nchannels;
    attrs.play_gain_db = gains[p];
    ac.attrs = attrs;
    EXPECT_TRUE(dev->MakeACOps(attrs, &ac.ops).ok());
    const auto tone = PartyTone(p, frames);
    PlayOutcome outcome;
    EXPECT_TRUE(dev->Play(ac, 2000, tone, false, &outcome).ok());
    EXPECT_EQ(outcome.consumed_client_bytes, frames);
  }
  for (uint64_t advanced = 0; advanced < 6000; advanced += 256) {
    clock->Advance(256);
    dev->Update();
  }
  SetSimdEnabled(true);
  return sink->Segment(2000, frames);
}

TEST(BridgeFanInTest, MulawFanInBitExactAcrossKernelPaths) {
  const auto reference = HeardMulawFanIn(/*fused=*/false, /*simd=*/false);
  ASSERT_EQ(reference.size(), 1200u);
  EXPECT_EQ(HeardMulawFanIn(false, true), reference);
  EXPECT_EQ(HeardMulawFanIn(true, false), reference);
  EXPECT_EQ(HeardMulawFanIn(true, true), reference);

  // Exact oracle: the first party's write is a gain translate into fresh
  // buffer space; each later party is a gained table mix in play order.
  // Same dsp primitives, applied outside the device.
  const int gains[] = {0, -6, -12, 6};
  std::vector<uint8_t> expect = PartyTone(0, 1200);
  ApplyMulawGain(gains[0], expect);
  for (size_t p = 1; p < 4; ++p) {
    const auto tone = PartyTone(p, 1200);
    MixTableGainBlockScalar(MulawMixTable(), MulawGainTable(gains[p]),
                            expect.data(), tone.data(), tone.size());
  }
  EXPECT_EQ(reference, expect);

  // And sanity: the result approximates the gained linear sum (a clobber
  // would have left only the last party's tone).
  double linear = 0;
  for (size_t p = 0; p < 4; ++p) {
    linear += 4000.0 * std::sin(0.02 * (p + 1) * 100) * DbToAmplitude(gains[p]);
  }
  EXPECT_NEAR(MulawToLinear16(reference[100]), linear, 900);
}

// Same grid for the lin16 path, against an exact in-test model built from
// the same Q15 arithmetic the kernels advertise.
std::vector<int16_t> HeardLin16FanIn(bool fused, bool simd) {
  auto clock = std::make_shared<ManualSampleClock>(48000);
  auto dev = HiFiDevice::Create(clock);
  auto sink = std::make_shared<CaptureSink>(64u << 20);
  dev->sim().SetSink(sink);
  dev->SetFusedGain(fused);
  SetSimdEnabled(simd);
  dev->Update();

  const int gains[] = {-6, -18, 3};
  const size_t frames = 900;
  for (size_t p = 0; p < 3; ++p) {
    ServerAC ac;
    ac.id = static_cast<uint32_t>(p + 1);
    ac.device = dev.get();
    ACAttributes attrs;
    attrs.encoding = AEncodeType::kLin16;
    attrs.channels = 2;
    attrs.play_gain_db = gains[p];
    ac.attrs = attrs;
    EXPECT_TRUE(dev->MakeACOps(attrs, &ac.ops).ok());
    std::vector<int16_t> samples(frames * 2);
    for (size_t i = 0; i < samples.size(); ++i) {
      samples[i] =
          static_cast<int16_t>(((p + 3) * 1103 * i + 77) % 65536 - 32768);
    }
    PlayOutcome outcome;
    EXPECT_TRUE(dev->Play(ac, 4000,
                          std::span<const uint8_t>(
                              reinterpret_cast<const uint8_t*>(samples.data()),
                              samples.size() * 2),
                          !HostIsLittleEndian(), &outcome)
                    .ok());
  }
  for (uint64_t advanced = 0; advanced < 12000; advanced += 1024) {
    clock->Advance(1024);
    dev->Update();
  }
  SetSimdEnabled(true);
  const auto raw = sink->Segment(4000, frames * 4, 4);
  const auto* s16 = reinterpret_cast<const int16_t*>(raw.data());
  return std::vector<int16_t>(s16, s16 + raw.size() / 2);
}

TEST(BridgeFanInTest, Lin16FanInBitExactAcrossKernelPathsAndModel) {
  const auto reference = HeardLin16FanIn(false, false);
  ASSERT_EQ(reference.size(), 1800u);  // 900 frames x 2 channels
  EXPECT_EQ(HeardLin16FanIn(false, true), reference);
  EXPECT_EQ(HeardLin16FanIn(true, false), reference);
  EXPECT_EQ(HeardLin16FanIn(true, true), reference);

  // Exact model: party 0 lands on fresh space (gain translate), parties 1
  // and 2 mix - the identical Q15 scale-clamp then saturating add.
  const int gains[] = {-6, -18, 3};
  std::vector<int16_t> model(1800, 0);
  for (size_t p = 0; p < 3; ++p) {
    const int32_t q15 = GainQ15(gains[p]);
    for (size_t i = 0; i < model.size(); ++i) {
      const int16_t s =
          static_cast<int16_t>(((p + 3) * 1103 * i + 77) % 65536 - 32768);
      const int64_t scaled64 = (static_cast<int64_t>(s) * q15) >> 15;
      const int16_t scaled =
          static_cast<int16_t>(std::clamp<int64_t>(scaled64, -32768, 32767));
      model[i] = p == 0 ? scaled : MixLin16(model[i], scaled);
    }
  }
  EXPECT_EQ(reference, model);
}

TEST(BridgeFanInTest, PerPartyGainGoldenVectors) {
  // A single gained party: every output byte is the cached table
  // translation, which equals the functional decode-scale-reencode golden.
  auto clock = std::make_shared<ManualSampleClock>(8000);
  auto dev = CodecDevice::Create(clock);
  auto sink = std::make_shared<CaptureSink>();
  dev->sim().SetSink(sink);
  dev->Update();

  ServerAC ac;
  ac.id = 1;
  ac.device = dev.get();
  ACAttributes attrs;
  attrs.channels = dev->desc().play_nchannels;
  attrs.play_gain_db = -12;
  ac.attrs = attrs;
  ASSERT_TRUE(dev->MakeACOps(attrs, &ac.ops).ok());

  std::vector<uint8_t> pattern(256);
  for (size_t i = 0; i < 256; ++i) {
    pattern[i] = static_cast<uint8_t>(i);  // every mu-law code once
  }
  PlayOutcome outcome;
  ASSERT_TRUE(dev->Play(ac, 1000, pattern, false, &outcome).ok());
  for (uint64_t advanced = 0; advanced < 4000; advanced += 256) {
    clock->Advance(256);
    dev->Update();
  }
  const auto heard = sink->Segment(1000, 256);
  ASSERT_EQ(heard.size(), 256u);
  const GainTable& table = MulawGainTable(-12);
  for (size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(heard[i], table[pattern[i]]) << "byte " << i;
    EXPECT_EQ(heard[i], MulawGainFunctional(-12.0, pattern[i])) << "byte " << i;
  }
}

// --- the counter split: preempt vs mix, fan-in high water, discards ----------

class BridgeCountersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_shared<ManualSampleClock>(8000);
    dev_ = CodecDevice::Create(clock_);
    sink_ = std::make_shared<CaptureSink>();
    dev_->sim().SetSink(sink_);
    dev_->Update();
  }

  ServerAC MakeAC(uint32_t preempt, int gain_db) {
    ServerAC ac;
    ac.id = ++next_id_;
    ac.device = dev_.get();
    ACAttributes attrs;
    attrs.channels = dev_->desc().play_nchannels;
    attrs.preempt = preempt;
    attrs.play_gain_db = gain_db;
    ac.attrs = attrs;
    EXPECT_TRUE(dev_->MakeACOps(attrs, &ac.ops).ok());
    return ac;
  }

  void Play(ServerAC& ac, ATime t, size_t frames) {
    PlayOutcome outcome;
    const std::vector<uint8_t> data(frames, 0x45);
    ASSERT_TRUE(dev_->Play(ac, t, data, false, &outcome).ok());
  }

  void RunFor(uint64_t samples) {
    for (uint64_t advanced = 0; advanced < samples; advanced += 256) {
      clock_->Advance(256);
      dev_->Update();
    }
  }

  std::shared_ptr<ManualSampleClock> clock_;
  std::unique_ptr<CodecDevice> dev_;
  std::shared_ptr<CaptureSink> sink_;
  uint32_t next_id_ = 0;
};

TEST_F(BridgeCountersTest, SharedWindowSplitsPreemptFromMix) {
  ServerAC a = MakeAC(0, 0);
  ServerAC b = MakeAC(0, -6);
  ServerAC c = MakeAC(1, 0);  // preempting

  // Window 1: two mixers and a preemptor land together. The second and
  // third writes see another live source in the window.
  Play(a, 2000, 400);
  Play(b, 2000, 400);
  Play(c, 2000, 400);
  const auto& m = dev_->metrics();
  EXPECT_EQ(m.mixed_writes.Value(), 2u);
  EXPECT_EQ(m.mix_shared_writes.Value(), 1u);
  EXPECT_EQ(m.preempt_writes.Value(), 1u);
  EXPECT_EQ(m.preempt_clobber_writes.Value(), 1u);
  EXPECT_EQ(m.mix_fanin_hw.Value(), 3u);
  // Gain fused only where the gain is non-zero and data was mixed.
  EXPECT_EQ(m.gain_fused_writes.Value(), 1u);

  // A new window with one lone source: no shared counts, high water holds.
  dev_->Update();
  Play(a, 2600, 400);
  EXPECT_EQ(m.mixed_writes.Value(), 3u);
  EXPECT_EQ(m.mix_shared_writes.Value(), 1u);
  EXPECT_EQ(m.mix_fanin_hw.Value(), 3u);

  // The same AC playing twice in one window is one source.
  dev_->Update();
  Play(a, 3200, 200);
  Play(a, 3400, 200);
  Play(b, 3200, 200);
  EXPECT_EQ(m.mix_fanin_hw.Value(), 3u);
  EXPECT_EQ(m.mix_shared_writes.Value(), 2u);  // only b's write was shared
}

TEST_F(BridgeCountersTest, DiscardAccountingIdenticalOnPreemptAndMixPaths) {
  ServerAC mixer = MakeAC(0, 0);
  ServerAC preemptor = MakeAC(1, 0);
  RunFor(8000);
  const auto& m = dev_->metrics();

  // Entirely in the past: all frames counted lost, both paths.
  Play(mixer, 1000, 500);
  EXPECT_EQ(m.play_discarded_frames.Value(), 500u);
  Play(preemptor, 1000, 500);
  EXPECT_EQ(m.play_discarded_frames.Value(), 1000u);

  // Straddling now: exactly the clipped prefix, both paths.
  const ATime now = dev_->GetTime();
  Play(mixer, now - 200, 600);
  EXPECT_EQ(m.play_discarded_frames.Value(), 1200u);
  Play(preemptor, now - 200, 600);
  EXPECT_EQ(m.play_discarded_frames.Value(), 1400u);

  // A future write loses nothing.
  Play(mixer, now + 400, 600);
  EXPECT_EQ(m.play_discarded_frames.Value(), 1400u);
  // Discards never masquerade as device starvation.
  EXPECT_EQ(m.play_underrun_samples.Value(), 0u);
}

TEST_F(BridgeCountersTest, EagerSilenceFillIsCountedInBaselineMode) {
  // The unoptimized (eager) update silence-fills every region that slides
  // into the past; that fill must land in the same counter the lazy path
  // uses, so the silence_filled_frames axis is comparable across the
  // ablation.
  dev_->SetLazySilenceFill(false);
  const uint64_t before = dev_->metrics().silence_filled_frames.Value();
  RunFor(4000);
  const uint64_t filled = dev_->metrics().silence_filled_frames.Value() - before;
  EXPECT_GE(filled, 4000u);  // every advanced sample had no client data
}

// --- DTMF arbitration: detector goldens ------------------------------------

TEST(BridgeDtmfTest, DigitsSurviveHostileBlockBoundaries) {
  const std::string dialed = "158*#";
  const std::vector<uint8_t> audio = SynthesizeDialString(dialed, 8000);
  // Feed the same audio in pathological chunkings; the detector's internal
  // 205-sample blocking must make the boundaries invisible.
  for (const size_t chunk : {size_t{1}, size_t{7}, size_t{205}, size_t{320},
                             size_t{1000}, audio.size()}) {
    DtmfDetector detector(8000);
    for (size_t off = 0; off < audio.size(); off += chunk) {
      const size_t n = std::min(chunk, audio.size() - off);
      detector.FeedMulaw(std::span<const uint8_t>(audio.data() + off, n));
    }
    EXPECT_EQ(detector.Digits(), dialed) << "chunk=" << chunk;
  }
}

TEST(BridgeDtmfTest, DigitsSurviveResamplingTo48kAndBack) {
  const std::string dialed = "42*";
  const std::vector<uint8_t> mulaw = SynthesizeDialString(dialed, 8000);
  std::vector<int16_t> lin(mulaw.size());
  for (size_t i = 0; i < mulaw.size(); ++i) {
    lin[i] = MulawToLinear16(mulaw[i]);
  }

  // Up to 48 kHz: detect with the block size scaled to keep the classic
  // 205-samples-at-8k bin alignment.
  LinearResampler up(8000, 48000);
  const std::vector<int16_t> at48k = up.Process(lin);
  ASSERT_GT(at48k.size(), lin.size() * 5);
  DtmfDetector hifi(48000, 205 * 6);
  hifi.Feed(at48k);
  EXPECT_EQ(hifi.Digits(), dialed);

  // And back down to 8 kHz through the same interpolator.
  LinearResampler down(48000, 8000);
  const std::vector<int16_t> back = down.Process(at48k);
  DtmfDetector phone(8000);
  phone.Feed(back);
  EXPECT_EQ(phone.Digits(), dialed);
}

TEST(BridgeDtmfTest, PressSplitAcrossConferenceBlocksDecodesOnce) {
  // A press split across conference blocks (the abridge case: an 800-frame
  // press over 320-frame blocks) must decode exactly once - the key-down
  // edge, not once per block.
  const std::vector<uint8_t> press = SynthesizeDialString("*", 8000);
  std::vector<uint8_t> tape(3 * 320, kMulawSilence);
  std::copy(press.begin(),
            press.begin() + static_cast<long>(std::min(press.size(), tape.size())),
            tape.begin());
  DtmfDetector detector(8000);
  for (size_t b = 0; b < 3; ++b) {
    detector.FeedMulaw(std::span<const uint8_t>(tape.data() + b * 320, 320));
  }
  EXPECT_EQ(detector.Digits(), "*");
}

// --- end to end: the abridge core over a live server -------------------------

TEST(BridgeEndToEndTest, ScriptedPressesDriveTheFloor) {
  ServerRunner::Config config;
  config.with_codec = true;
  config.realtime = false;
  auto runner = ServerRunner::Start(config);
  ASSERT_NE(runner, nullptr);

  AbridgeOptions options;
  options.parties = 3;
  options.blocks = 20;
  options.device = static_cast<int>(runner->codec_id());
  options.muted_gain_db = -18;
  // Party 1 grabs, releases, then party 2 grabs; party 0 never presses.
  options.script = {{2, 1, '*'}, {8, 1, '#'}, {14, 2, '*'}};
  options.connect = [&](size_t) { return runner->ConnectInProcess(); };

  auto bridged = RunAbridge(options);
  ASSERT_TRUE(bridged.ok()) << bridged.status().ToString();
  const AbridgeResult& r = bridged.value();
  EXPECT_EQ(r.blocks_played, 60u);
  EXPECT_EQ(r.floor_log, "1*;1#;2*;");
  EXPECT_EQ(r.floor_changes, 3u);
  EXPECT_EQ(r.dtmf_digits, 3u);
  EXPECT_EQ(r.final_floor, 2);
  ASSERT_EQ(r.party_gains_db.size(), 3u);
  EXPECT_EQ(r.party_gains_db[0], -18);
  EXPECT_EQ(r.party_gains_db[1], -18);
  EXPECT_EQ(r.party_gains_db[2], 0);

  // The server saw the fan-in: every play mixed, all three parties in one
  // window at least once, per-party gain fused on the muted writes.
  auto probe = runner->ConnectInProcess();
  ASSERT_TRUE(probe.ok());
  auto stats = probe.value()->GetServerStats();
  ASSERT_TRUE(stats.ok());
  ASSERT_GE(stats.value().devices.size(), 1u);
  const auto& counters = stats.value().devices[0].counters;
  ASSERT_EQ(counters.size(), kNumDeviceCounters);
  EXPECT_EQ(counters[DeviceCounterIndex("mixed_writes")], 60u);
  EXPECT_EQ(counters[DeviceCounterIndex("preempt_writes")], 0u);
  EXPECT_EQ(counters[DeviceCounterIndex("mix_fanin_hw")], 3u);
  EXPECT_GE(counters[DeviceCounterIndex("mix_shared_writes")], 2u);
  EXPECT_GT(counters[DeviceCounterIndex("gain_fused_writes")], 0u);
  EXPECT_EQ(counters[DeviceCounterIndex("play_discarded_frames")], 0u);
}

TEST(BridgeEndToEndTest, RotationArbitrationNeedsNoDetectors) {
  ServerRunner::Config config;
  config.with_codec = true;
  config.realtime = false;
  auto runner = ServerRunner::Start(config);
  ASSERT_NE(runner, nullptr);

  AbridgeOptions options;
  options.parties = 4;
  options.blocks = 16;
  options.detect_dtmf = false;
  options.floor_rotate_blocks = 4;
  options.device = static_cast<int>(runner->codec_id());
  options.connect = [&](size_t) { return runner->ConnectInProcess(); };

  auto bridged = RunAbridge(options);
  ASSERT_TRUE(bridged.ok()) << bridged.status().ToString();
  EXPECT_EQ(bridged.value().floor_changes, 4u);
  EXPECT_EQ(bridged.value().floor_log, "0*;1*;2*;3*;");
  EXPECT_EQ(bridged.value().dtmf_digits, 0u);
  EXPECT_EQ(bridged.value().final_floor, 3);
}

// The cross-shard fan-in contract: run the conference with parties pinned
// round-robin across however many shards AF_SHARDS grants (the _shard4
// re-runs make this 4, on both poller backends). Every forwarded play must
// drain, nothing may be lost, and the mailbox depth stays bounded by the
// synchronous client count.
TEST(BridgeEndToEndTest, CrossShardFanInLosesNothing) {
  const int shards = ShardsFromEnv();
  ServerRunner::Config config;
  config.with_codec = true;
  config.realtime = false;
  auto runner = ServerRunner::Start(config);
  ASSERT_NE(runner, nullptr);

  AbridgeOptions options;
  options.parties = 8;
  options.blocks = 12;
  options.fleet = 2;
  options.device = static_cast<int>(runner->codec_id());
  options.connect = [&](size_t i) {
    return shards > 1 ? runner->ConnectInProcessOnShard(
                            static_cast<uint32_t>(i % static_cast<size_t>(shards)))
                      : runner->ConnectInProcess();
  };

  auto bridged = RunAbridge(options);
  ASSERT_TRUE(bridged.ok()) << bridged.status().ToString();
  EXPECT_EQ(bridged.value().blocks_played, 96u);  // 8 parties x 12 blocks
  EXPECT_EQ(bridged.value().fleet_plays, 24u);

  auto probe = runner->ConnectInProcess();
  ASSERT_TRUE(probe.ok());
  auto stats = probe.value()->GetServerStats();
  ASSERT_TRUE(stats.ok());
  const ServerStatsWire& s = stats.value();

  ASSERT_GE(s.devices.size(), 1u);
  const auto& counters = s.devices[0].counters;
  EXPECT_EQ(counters[DeviceCounterIndex("mixed_writes")], 120u);  // + fleet
  EXPECT_EQ(counters[DeviceCounterIndex("play_discarded_frames")], 0u);
  EXPECT_EQ(counters[DeviceCounterIndex("play_underrun_samples")], 0u);

  if (shards > 1) {
    const size_t posted_idx = ServerCounterIndex("cross_shard_posted");
    const size_t drained_idx = ServerCounterIndex("cross_shard_drained");
    const size_t depth_idx = ServerCounterIndex("mailbox_depth_hw");
    uint64_t posted = 0, drained = 0, depth_hw = 0;
    ASSERT_EQ(s.shards.size(), static_cast<size_t>(shards));
    for (const ShardStatsWire& sh : s.shards) {
      posted += sh.counters[posted_idx];
      drained += sh.counters[drained_idx];
      depth_hw = std::max(depth_hw, sh.counters[depth_idx]);
    }
    // The 10 clients (8 parties + 2 fleet) not on the owner shard forward
    // 12 plays each to the device owner.
    const uint64_t off_owner =
        10 - (10 + static_cast<uint64_t>(shards) - 1) / shards;
    EXPECT_GE(posted, off_owner * 12);
    EXPECT_EQ(posted, drained) << "forwarded plays were lost in a mailbox";
    // Plays are synchronous per party: at most one outstanding message per
    // connected client (plus control traffic) can ever queue.
    EXPECT_LE(depth_hw, 2u * 10u);
  }
}

// Seeded torture: one party's server-side stream is cut mid-conference (a
// FaultStream EOF at a scripted byte offset, a different offset per
// round). The survivors must keep mixing as if nothing happened and the
// mailboxes must balance. Under AF_SHARDS=4 the survivors are pinned
// across shards, so their plays keep crossing the borrow protocol while
// the victim's connection is torn down.
TEST(BridgeEndToEndTest, KillOnePartyMidMixSurvivorsKeepTheConference) {
  const int shards = ShardsFromEnv();
  std::mt19937 rng(0xB21D);
  for (int round = 0; round < 3; ++round) {
    ServerRunner::Config config;
    config.with_codec = true;
    config.realtime = false;
    auto runner = ServerRunner::Start(config);
    ASSERT_NE(runner, nullptr);

    constexpr size_t kParties = 4;
    constexpr size_t kBlocks = 10;
    constexpr size_t kBlockFrames = 320;
    // Past the setup handshake and CreateAC, inside the play stream (each
    // play carries ~340 bytes; the victim sends ten).
    const uint64_t cut_at = 400 + rng() % 2000;

    std::vector<std::unique_ptr<AFAudioConn>> conns;
    std::vector<AC*> acs;
    for (size_t i = 0; i < kParties; ++i) {
      Result<std::unique_ptr<AFAudioConn>> conn = [&] {
        if (i == 1) {  // the victim
          auto faults = std::make_shared<FaultSchedule>();
          faults->CutReadAt(cut_at);
          return runner->ConnectInProcess(nullptr, faults);
        }
        return shards > 1 ? runner->ConnectInProcessOnShard(
                                static_cast<uint32_t>(i % shards))
                          : runner->ConnectInProcess();
      }();
      ASSERT_TRUE(conn.ok()) << conn.status().ToString();
      conns.push_back(conn.take());
      conns.back()->SetErrorHandler([](AFAudioConn&, const ErrorPacket&) {});
      conns.back()->SetIOErrorHandler([](AFAudioConn&) {});  // no exit(1)
      ACAttributes attrs;
      attrs.preempt = 0;
      attrs.encoding = AEncodeType::kMu255;
      auto ac = conns.back()->CreateAC(runner->codec_id(),
                                       kACPreemption | kACEncodingType, attrs);
      ASSERT_TRUE(ac.ok()) << ac.status().ToString();
      acs.push_back(ac.value());
    }

    std::vector<bool> alive(kParties, true);
    std::vector<uint8_t> tone(kBlockFrames);
    for (size_t i = 0; i < tone.size(); ++i) {
      tone[i] =
          MulawFromLinear16(static_cast<int16_t>(3000.0 * std::sin(0.05 * i)));
    }
    size_t survivor_plays = 0;
    bool victim_died = false;
    for (size_t b = 0; b < kBlocks; ++b) {
      for (size_t i = 0; i < kParties; ++i) {
        if (!alive[i]) {
          continue;
        }
        auto played =
            acs[i]->PlaySamples(2000 + static_cast<ATime>(b * kBlockFrames), tone);
        if (!played.ok()) {
          EXPECT_EQ(i, 1u) << "a survivor's play failed: "
                           << played.status().ToString();
          alive[i] = false;
          victim_died = true;
          continue;
        }
        if (i != 1) {
          ++survivor_plays;
        }
      }
    }
    EXPECT_TRUE(victim_died) << "cut at byte " << cut_at << " never landed";
    EXPECT_EQ(survivor_plays, (kParties - 1) * kBlocks);

    auto probe = runner->ConnectInProcess();
    ASSERT_TRUE(probe.ok());
    auto stats = probe.value()->GetServerStats();
    ASSERT_TRUE(stats.ok());
    const ServerStatsWire& s = stats.value();
    ASSERT_GE(s.devices.size(), 1u);
    EXPECT_GE(s.devices[0].counters[DeviceCounterIndex("mixed_writes")],
              survivor_plays);
    if (shards > 1) {
      const size_t posted_idx = ServerCounterIndex("cross_shard_posted");
      const size_t drained_idx = ServerCounterIndex("cross_shard_drained");
      uint64_t posted = 0, drained = 0;
      for (const ShardStatsWire& sh : s.shards) {
        posted += sh.counters[posted_idx];
        drained += sh.counters[drained_idx];
      }
      EXPECT_EQ(posted, drained) << "round " << round << ", cut " << cut_at;
    }
  }
}

}  // namespace
}  // namespace af
