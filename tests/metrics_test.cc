// The observability layer: metric primitives, the GetServerStats wire
// format, the astat rendering, and an end-to-end pass over a live server
// that played and recorded through a fault-injecting transport.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "client/audio_context.h"
#include "clients/cores.h"
#include "clients/server_runner.h"
#include "common/metrics.h"
#include "proto/requests.h"
#include "proto/stats.h"

namespace af {
namespace {

size_t CounterIndex(const char* name) {
  for (size_t i = 0; i < kNumServerCounters; ++i) {
    if (std::strcmp(kServerCounterNames[i], name) == 0) {
      return i;
    }
  }
  ADD_FAILURE() << "unknown counter " << name;
  return 0;
}

size_t DeviceCounterIndex(const char* name) {
  for (size_t i = 0; i < kNumDeviceCounters; ++i) {
    if (std::strcmp(kDeviceCounterNames[i], name) == 0) {
      return i;
    }
  }
  ADD_FAILURE() << "unknown device counter " << name;
  return 0;
}

// --- primitives -----------------------------------------------------------

TEST(MetricsTest, CounterAndGauge) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);

  Gauge g;
  g.Set(-7);
  EXPECT_EQ(g.Value(), -7);
  g.Add(10);
  EXPECT_EQ(g.Value(), 3);
}

TEST(MetricsTest, HistogramBucketLayout) {
  // bucket i holds values with bit_width == i: 0 -> 0, 1 -> 1, [2,3] -> 2...
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex((1u << 20) - 1), 20);
  EXPECT_EQ(Histogram::BucketIndex(1u << 20), 21);
  // Values beyond the top bucket saturate instead of indexing out of range.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kBuckets - 1);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
}

TEST(MetricsTest, HistogramRecordAndSnapshot) {
  Histogram h;
  h.Record(0);
  h.Record(5);
  h.Record(5);
  h.Record(1000);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 1010u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(3), 2u);   // 5 has bit_width 3
  EXPECT_EQ(h.BucketCount(10), 1u);  // 1000 has bit_width 10

  uint64_t snap[Histogram::kBuckets];
  h.Snapshot(snap);
  EXPECT_EQ(snap[3], 2u);
}

TEST(MetricsTest, HistogramQuantiles) {
  // Empty histogram: all quantiles are 0.
  std::vector<uint64_t> empty(Histogram::kBuckets, 0);
  EXPECT_EQ(HistogramQuantile(empty, 0.5), 0u);

  // 90 fast samples (value 1) and 10 slow ones (~1000): the median sits in
  // the fast bucket, the p99 in the slow one.
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(1);
  for (int i = 0; i < 10; ++i) h.Record(1000);
  uint64_t snap[Histogram::kBuckets];
  h.Snapshot(snap);
  const std::span<const uint64_t> buckets(snap, Histogram::kBuckets);
  EXPECT_EQ(HistogramQuantile(buckets, 0.5), 1u);
  EXPECT_EQ(HistogramQuantile(buckets, 0.99), 1023u);  // upper bound of bucket 10
  EXPECT_LE(HistogramQuantile(buckets, 0.5), HistogramQuantile(buckets, 0.95));
  EXPECT_LE(HistogramQuantile(buckets, 0.95), HistogramQuantile(buckets, 0.99));
}

TEST(MetricsTest, RegistryDumpsInRegistrationOrder) {
  Counter c;
  c.Add(7);
  Gauge g;
  g.Set(-3);
  Histogram h;
  h.Record(100);

  MetricsRegistry registry;
  registry.Register("first_counter", &c);
  registry.Register("a_gauge", &g);
  registry.Register("a_histogram", &h);
  EXPECT_EQ(registry.size(), 3u);

  const std::string dump = registry.DumpText();
  const size_t at_counter = dump.find("first_counter");
  const size_t at_gauge = dump.find("a_gauge");
  const size_t at_hist = dump.find("a_histogram");
  ASSERT_NE(at_counter, std::string::npos);
  ASSERT_NE(at_gauge, std::string::npos);
  ASSERT_NE(at_hist, std::string::npos);
  EXPECT_LT(at_counter, at_gauge);
  EXPECT_LT(at_gauge, at_hist);
  EXPECT_NE(dump.find("7"), std::string::npos);
  EXPECT_NE(dump.find("-3"), std::string::npos);
  EXPECT_NE(dump.find("count="), std::string::npos);
}

// --- wire format ----------------------------------------------------------

ServerStatsWire SampleStats() {
  ServerStatsWire s;
  s.counters.assign(kNumServerCounters, 0);
  s.counters[CounterIndex("requests_dispatched")] = 1234;
  s.counters[CounterIndex("bytes_in")] = 987654321;
  s.errors_by_code.assign(16, 0);
  s.errors_by_code[3] = 2;
  s.hist_buckets = Histogram::kBuckets;
  s.opcodes.resize(4);
  s.opcodes[2].count = 55;
  s.opcodes[2].sum_micros = 5500;
  s.opcodes[2].buckets.assign(Histogram::kBuckets, 0);
  s.opcodes[2].buckets[7] = 55;
  s.poll_wake.count = 9;
  s.poll_wake.sum = 90;
  s.poll_wake.buckets.assign(Histogram::kBuckets, 0);
  s.poll_wake.buckets[4] = 9;
  s.devices.resize(1);
  s.devices[0].index = 0;
  s.devices[0].counters.assign(kNumDeviceCounters, 0);
  s.devices[0].counters[DeviceCounterIndex("play_underruns")] = 3;
  s.devices[0].update_lag.count = 2;
  s.devices[0].update_lag.sum = 20;
  s.devices[0].update_lag.buckets.assign(Histogram::kBuckets, 0);
  s.devices[0].update_lag.buckets[4] = 2;
  return s;
}

TEST(StatsWireTest, EncodeDecodeRoundTrip) {
  const ServerStatsWire in = SampleStats();
  WireWriter w;
  in.Encode(w, /*seq=*/42);
  const auto& bytes = w.data();
  ASSERT_GT(bytes.size(), size_t{32});
  // Replies are a 32-byte unit plus extra_words * 4 bytes of extra data.
  EXPECT_EQ((bytes.size() - 32) % 4, 0u);

  ServerStatsWire out;
  ASSERT_TRUE(ServerStatsWire::Decode(bytes, HostWireOrder(), &out));
  EXPECT_EQ(out.version, in.version);
  EXPECT_EQ(out.counters, in.counters);
  EXPECT_EQ(out.errors_by_code, in.errors_by_code);
  EXPECT_EQ(out.hist_buckets, in.hist_buckets);
  ASSERT_EQ(out.opcodes.size(), in.opcodes.size());
  EXPECT_EQ(out.opcodes[2].count, 55u);
  EXPECT_EQ(out.opcodes[2].sum_micros, 5500u);
  EXPECT_EQ(out.opcodes[2].buckets[7], 55u);
  EXPECT_EQ(out.poll_wake.count, 9u);
  ASSERT_EQ(out.devices.size(), 1u);
  EXPECT_EQ(out.devices[0].counters, in.devices[0].counters);
  EXPECT_EQ(out.devices[0].update_lag.count, 2u);
}

TEST(StatsWireTest, DecodeRejectsDamage) {
  const ServerStatsWire in = SampleStats();
  WireWriter w;
  in.Encode(w, 1);
  std::vector<uint8_t> bytes = w.data();

  ServerStatsWire out;
  // Truncation at any point past the reply unit fails cleanly.
  std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + 40);
  EXPECT_FALSE(ServerStatsWire::Decode(cut, HostWireOrder(), &out));
  // An absurd array count is damage, not an allocation request.
  std::vector<uint8_t> corrupt = bytes;
  corrupt[32 + 4] = 0xFF;  // low byte of n_counters
  corrupt[32 + 5] = 0xFF;
  corrupt[32 + 6] = 0xFF;
  corrupt[32 + 7] = 0xFF;
  EXPECT_FALSE(ServerStatsWire::Decode(corrupt, HostWireOrder(), &out));
}

// --- astat rendering -------------------------------------------------------

TEST(AstatFormatTest, TableNamesWhatItCounts) {
  const std::string table = FormatServerStats(SampleStats(), /*json=*/false);
  EXPECT_NE(table.find("requests_dispatched"), std::string::npos);
  EXPECT_NE(table.find("1234"), std::string::npos);
  EXPECT_NE(table.find("play_underruns"), std::string::npos);
  EXPECT_NE(table.find("errors by code"), std::string::npos);
  EXPECT_NE(table.find("dispatch latency"), std::string::npos);
}

TEST(AstatFormatTest, JsonCarriesTheSameNumbers) {
  const std::string json = FormatServerStats(SampleStats(), /*json=*/true);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"requests_dispatched\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"play_underruns\":3"), std::string::npos);
  EXPECT_NE(json.find("\"poll_wake\""), std::string::npos);
  // Quick structural sanity: balanced braces and brackets.
  int braces = 0, brackets = 0;
  for (char ch : json) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// --- end to end ------------------------------------------------------------

TEST(MetricsEndToEnd, StatsOverTheWireUnderFaultInjection) {
  ServerRunner::Config config;
  config.with_codec = true;
  config.realtime = false;
  auto runner = ServerRunner::Start(config);
  ASSERT_NE(runner, nullptr);

  // The server end of the connection reads through a fault schedule that
  // fragments every transfer into 64-byte pieces.
  auto faults = std::make_shared<FaultSchedule>();
  faults->SetMaxReadChunk(64);
  auto opened = runner->ConnectInProcess(nullptr, faults);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto conn = opened.take();
  conn->SetErrorHandler([](AFAudioConn&, const ErrorPacket&) {});

  // Traffic: time queries, a play, a non-blocking record, and one error.
  const DeviceId dev = runner->codec_id();
  auto now = conn->GetTime(dev);
  ASSERT_TRUE(now.ok());
  auto ac = conn->CreateAC(dev, 0, ACAttributes{});
  ASSERT_TRUE(ac.ok());
  std::vector<uint8_t> tone(800, 0xFF);
  auto played = ac.value()->PlaySamples(now.value() + 400, tone);
  ASSERT_TRUE(played.ok()) << played.status().ToString();
  std::vector<uint8_t> rec(400);
  auto recorded = ac.value()->RecordSamples(now.value() - 800, rec, /*block=*/false);
  ASSERT_TRUE(recorded.ok());
  EXPECT_FALSE(conn->GetTime(99).ok());  // provokes a BadDevice error

  // Provoke a play underrun: jump the sample clock far past the hardware
  // window, then run the device update, which finds the hole.
  runner->manual_clock()->Advance(1u << 17);
  runner->RunOnLoop([&] { runner->codec()->Update(); });

  auto stats_result = conn->GetServerStats();
  ASSERT_TRUE(stats_result.ok()) << stats_result.status().ToString();
  const ServerStatsWire& stats = stats_result.value();

  EXPECT_EQ(stats.version, kServerStatsVersion);
  ASSERT_EQ(stats.counters.size(), kNumServerCounters);
  EXPECT_GT(stats.counters[CounterIndex("requests_dispatched")], 0u);
  EXPECT_GT(stats.counters[CounterIndex("bytes_in")], 0u);
  EXPECT_GT(stats.counters[CounterIndex("bytes_out")], 0u);
  EXPECT_GT(stats.counters[CounterIndex("clients_accepted")], 0u);
  EXPECT_GT(stats.counters[CounterIndex("faults_applied")], 0u);
  EXPECT_GT(stats.counters[CounterIndex("errors_sent")], 0u);

  uint64_t total_errors = 0;
  for (uint64_t e : stats.errors_by_code) total_errors += e;
  EXPECT_GE(total_errors, 1u);

  // Per-opcode accounting: every request kind we sent shows up, and the
  // histogram agrees with the count.
  ASSERT_GT(stats.opcodes.size(), static_cast<size_t>(Opcode::kPlaySamples));
  const auto& get_time = stats.opcodes[static_cast<size_t>(Opcode::kGetTime)];
  const auto& play = stats.opcodes[static_cast<size_t>(Opcode::kPlaySamples)];
  const auto& record = stats.opcodes[static_cast<size_t>(Opcode::kRecordSamples)];
  EXPECT_GE(get_time.count, 2u);
  EXPECT_EQ(play.count, 1u);
  EXPECT_EQ(record.count, 1u);
  uint64_t play_bucket_total = 0;
  for (uint64_t b : play.buckets) play_bucket_total += b;
  EXPECT_EQ(play_bucket_total, play.count);
  // Percentiles are well-formed (monotone) even for small samples.
  const uint64_t p50 = HistogramQuantile(get_time.buckets, 0.5);
  const uint64_t p99 = HistogramQuantile(get_time.buckets, 0.99);
  EXPECT_LE(p50, p99);

  // The provoked underrun is visible in the device section.
  ASSERT_GE(stats.devices.size(), 1u);
  ASSERT_EQ(stats.devices[0].counters.size(), kNumDeviceCounters);
  EXPECT_GE(stats.devices[0].counters[DeviceCounterIndex("play_underruns")], 1u);
  EXPECT_GT(stats.devices[0].counters[DeviceCounterIndex("play_underrun_samples")], 0u);
  EXPECT_GT(stats.devices[0].counters[DeviceCounterIndex("updates")], 0u);

  // The text dump names the same spine (exercised on the loop thread, the
  // same path SIGUSR1 and shutdown use).
  std::string dump;
  runner->RunOnLoop([&] { dump = runner->server().DumpStatsText(); });
  EXPECT_NE(dump.find("requests_dispatched"), std::string::npos);
  EXPECT_NE(dump.find("dev0."), std::string::npos);
  EXPECT_NE(dump.find("dispatch.GetTime"), std::string::npos);

  // And the rendered forms work against live data.
  const std::string json = FormatServerStats(stats, true);
  EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
}

// Samples-lost accounting must be path-independent: a late play charges
// play_discarded_frames the same whether the AC mixes or preempts, never
// leaks into the underrun counter (that one is the device starving, not
// the client being late), and the baseline eager update counts its
// silence fill in the same counter the lazy path uses - all visible over
// the wire, where bench_bridge's "lost" column reads them.
TEST(MetricsEndToEnd, SamplesLostAccountingConsistentAcrossPaths) {
  ServerRunner::Config config;
  config.with_codec = true;
  config.realtime = false;
  auto runner = ServerRunner::Start(config);
  ASSERT_NE(runner, nullptr);

  auto opened = runner->ConnectInProcess();
  ASSERT_TRUE(opened.ok());
  auto conn = opened.take();
  const DeviceId dev = runner->codec_id();

  ACAttributes mix_attrs;
  mix_attrs.preempt = 0;
  auto mixer = conn->CreateAC(dev, kACPreemption, mix_attrs);
  ASSERT_TRUE(mixer.ok());
  ACAttributes pre_attrs;
  pre_attrs.preempt = 1;
  auto preemptor = conn->CreateAC(dev, kACPreemption, pre_attrs);
  ASSERT_TRUE(preemptor.ok());

  // Move device time forward so there is a past to be late into. Advance
  // in sub-ring steps with an Update each: jumping more than one hardware
  // ring between updates is a real starvation event and would (correctly)
  // charge play_underrun_samples, which this test pins at zero.
  const auto step = [&](size_t frames) {
    runner->RunOnLoop([&] { runner->codec()->Update(); });
    while (frames > 0) {
      const size_t chunk = std::min<size_t>(frames, 512);
      runner->manual_clock()->Advance(static_cast<uint32_t>(chunk));
      runner->RunOnLoop([&] { runner->codec()->Update(); });
      frames -= chunk;
    }
  };
  step(1u << 14);

  const auto discarded = [&]() -> uint64_t {
    auto stats = conn->GetServerStats();
    EXPECT_TRUE(stats.ok());
    return stats.value().devices[0].counters[DeviceCounterIndex("play_discarded_frames")];
  };
  const uint64_t base = discarded();

  // Entirely-past plays: both paths charge exactly the request's frames.
  std::vector<uint8_t> tone(500, 0xFF);
  ASSERT_TRUE(mixer.value()->PlaySamples(1000, tone).ok());
  EXPECT_EQ(discarded(), base + 500);
  ASSERT_TRUE(preemptor.value()->PlaySamples(1000, tone).ok());
  EXPECT_EQ(discarded(), base + 1000);

  // Straddling plays: both paths charge exactly the clipped prefix.
  auto now = conn->GetTime(dev);
  ASSERT_TRUE(now.ok());
  ASSERT_TRUE(mixer.value()->PlaySamples(now.value() - 200, tone).ok());
  EXPECT_EQ(discarded(), base + 1200);
  ASSERT_TRUE(preemptor.value()->PlaySamples(now.value() - 200, tone).ok());
  EXPECT_EQ(discarded(), base + 1400);

  // The discards stayed out of the starvation counter, and the eager
  // baseline's silence fill lands in the shared counter.
  auto stats = conn->GetServerStats();
  ASSERT_TRUE(stats.ok());
  const auto& counters = stats.value().devices[0].counters;
  EXPECT_EQ(counters[DeviceCounterIndex("play_underrun_samples")], 0u);
  const uint64_t lazy_filled = counters[DeviceCounterIndex("silence_filled_frames")];
  runner->RunOnLoop([&] { runner->codec()->SetLazySilenceFill(false); });
  step(2048);
  auto after = conn->GetServerStats();
  ASSERT_TRUE(after.ok());
  EXPECT_GE(after.value().devices[0].counters[DeviceCounterIndex("silence_filled_frames")],
            lazy_filled + 2048);
}

}  // namespace
}  // namespace af
