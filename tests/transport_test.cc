// Transport layer: stream pairs, listeners, server-name parsing, the
// poller, and the datagram channels (real UDP and simulated-lossy).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <numeric>
#include <thread>

#include "transport/datagram.h"
#include "transport/fault_stream.h"
#include "transport/listener.h"
#include "transport/poller.h"
#include "transport/stream.h"

namespace af {
namespace {

TEST(ServerNameTest, Parsing) {
  auto tcp = ParseServerName("myhost:2");
  ASSERT_TRUE(tcp.has_value());
  EXPECT_EQ(tcp->kind, ServerAddr::Kind::kTcp);
  EXPECT_EQ(tcp->host, "myhost");
  EXPECT_EQ(tcp->display, 2);
  EXPECT_EQ(tcp->TcpPort(), kAudioFileBasePort + 2);

  auto local = ParseServerName(":0");
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(local->kind, ServerAddr::Kind::kUnix);
  EXPECT_EQ(local->UnixPath(), "/tmp/.AF-unix/AF0");

  auto unix_name = ParseServerName("unix:3");
  ASSERT_TRUE(unix_name.has_value());
  EXPECT_EQ(unix_name->kind, ServerAddr::Kind::kUnix);
  EXPECT_EQ(unix_name->display, 3);

  EXPECT_FALSE(ParseServerName("no-colon").has_value());
  EXPECT_FALSE(ParseServerName("host:abc").has_value());
}

TEST(ServerNameTest, MalformedInputsRejected) {
  EXPECT_FALSE(ParseServerName("").has_value());          // nothing at all
  EXPECT_FALSE(ParseServerName(":").has_value());         // colon, no display
  EXPECT_FALSE(ParseServerName("host:").has_value());     // host, no display
  EXPECT_FALSE(ParseServerName("unix:abc").has_value());  // non-numeric
  EXPECT_FALSE(ParseServerName("host:2x").has_value());   // trailing junk
  EXPECT_FALSE(ParseServerName("host:-1").has_value());   // negative display
  // Huge display numbers must fail rather than wrap the 16-bit TCP port.
  EXPECT_FALSE(ParseServerName("host:99999999999999999999").has_value());
  EXPECT_FALSE(ParseServerName("host:65536").has_value());
  const int max_display = 65535 - kAudioFileBasePort;
  EXPECT_FALSE(ParseServerName("host:" + std::to_string(max_display + 1)).has_value());
  // The largest display whose port still fits is accepted.
  auto edge = ParseServerName("host:" + std::to_string(max_display));
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->TcpPort(), 65535);
}

TEST(StreamTest, PairRoundTrip) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  const char msg[] = "hello audio";
  ASSERT_TRUE(a.WriteAll(msg, sizeof(msg)).ok());
  char buf[sizeof(msg)] = {};
  ASSERT_TRUE(b.ReadAll(buf, sizeof(buf)).ok());
  EXPECT_STREQ(buf, "hello audio");
}

TEST(StreamTest, ReadAfterCloseReportsClosed) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  a.Close();
  char buf[4];
  const IoResult r = b.Read(buf, sizeof(buf));
  EXPECT_EQ(r.status, IoStatus::kClosed);
}

TEST(StreamTest, NonBlockingReadWouldBlock) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ASSERT_TRUE(b.SetNonBlocking(true).ok());
  char buf[4];
  EXPECT_EQ(b.Read(buf, sizeof(buf)).status, IoStatus::kWouldBlock);
  (void)a;
}

TEST(StreamTest, PartialReadReturnsWhatIsBuffered) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ASSERT_TRUE(a.WriteAll("abc", 3).ok());
  char buf[16] = {};
  const IoResult r = b.Read(buf, sizeof(buf));
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 3u);  // kOk with fewer bytes than asked
}

TEST(StreamTest, WriteToClosedPeerReportsClosed) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  b.Close();
  const char byte = 'x';
  // EPIPE must surface as kClosed (and must not raise SIGPIPE).
  EXPECT_EQ(a.Write(&byte, 1).status, IoStatus::kClosed);
}

TEST(StreamTest, NonBlockingWriteFillsBufferThenWouldBlock) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ASSERT_TRUE(a.SetNonBlocking(true).ok());
  std::vector<uint8_t> chunk(4096, 0x55);
  IoStatus status = IoStatus::kOk;
  // Nobody reads from b, so the socket buffer must eventually fill.
  for (int i = 0; i < 10000 && status == IoStatus::kOk; ++i) {
    status = a.Write(chunk.data(), chunk.size()).status;
  }
  EXPECT_EQ(status, IoStatus::kWouldBlock);
  // Draining the peer makes the stream writable again.
  ASSERT_TRUE(b.SetNonBlocking(true).ok());
  std::vector<uint8_t> sink(1 << 16);
  while (b.Read(sink.data(), sink.size()).status == IoStatus::kOk) {
  }
  const IoResult r = a.Write(chunk.data(), chunk.size());
  EXPECT_EQ(r.status, IoStatus::kOk);
  (void)b;
}

TEST(StreamTest, BadFdReportsError) {
  // A stream whose fd the kernel no longer recognises must report kError,
  // not kClosed: the distinction separates peer teardown from local bugs.
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ::close(a.fd());  // yank the descriptor out from under the stream
  char buf[4];
  EXPECT_EQ(a.Read(buf, sizeof(buf)).status, IoStatus::kError);
  EXPECT_EQ(a.Write(buf, sizeof(buf)).status, IoStatus::kError);
  (void)b;
}

// --- scatter-gather writes ---------------------------------------------------

TEST(IovecConsumeTest, AdvancesInPlace) {
  uint8_t buf_a[4] = {1, 2, 3, 4};
  uint8_t buf_b[3] = {5, 6, 7};
  struct iovec iov[2] = {{buf_a, sizeof(buf_a)}, {buf_b, sizeof(buf_b)}};

  // Consume nothing: stays at the first entry, untouched.
  EXPECT_EQ(IovecConsume(iov, 2, 0), 0u);
  EXPECT_EQ(iov[0].iov_len, 4u);

  // Partial first entry.
  EXPECT_EQ(IovecConsume(iov, 2, 3), 0u);
  EXPECT_EQ(iov[0].iov_len, 1u);
  EXPECT_EQ(*static_cast<uint8_t*>(iov[0].iov_base), 4);

  // Across the boundary into the middle of the second entry.
  EXPECT_EQ(IovecConsume(iov, 2, 2), 1u);
  EXPECT_EQ(iov[0].iov_len, 0u);
  EXPECT_EQ(iov[1].iov_len, 2u);
  EXPECT_EQ(*static_cast<uint8_t*>(iov[1].iov_base), 6);

  // Everything left: past the end.
  EXPECT_EQ(IovecConsume(iov, 2, 2), 2u);
}

TEST(IovecConsumeTest, SkipsLeadingEmptyEntries) {
  uint8_t data[2] = {9, 9};
  struct iovec iov[3] = {{data, 0}, {data, 0}, {data, sizeof(data)}};
  // With nothing consumed, empty leading entries are still skipped so a
  // caller can start its chain at the first real segment.
  EXPECT_EQ(IovecConsume(iov, 3, 0), 2u);
}

TEST(StreamTest, WritevGathersAcrossBuffers) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  uint8_t part1[] = {'h', 'e', 'l'};
  uint8_t part2[] = {'l', 'o'};
  uint8_t part3[] = {'!', '!'};
  struct iovec iov[3] = {
      {part1, sizeof(part1)}, {part2, sizeof(part2)}, {part3, sizeof(part3)}};
  const IoResult r = a.Writev(iov, 3);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 7u);
  char buf[8] = {};
  ASSERT_TRUE(b.ReadAll(buf, 7).ok());
  EXPECT_STREQ(buf, "hello!!");
}

TEST(StreamTest, WritevToClosedPeerReportsClosed) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  b.Close();
  uint8_t byte = 'x';
  struct iovec iov = {&byte, 1};
  // EPIPE must surface as kClosed without raising SIGPIPE, exactly like
  // the plain Write path.
  EXPECT_EQ(a.Writev(&iov, 1).status, IoStatus::kClosed);
}

TEST(StreamTest, WritevNonBlockingReportsWouldBlock) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ASSERT_TRUE(a.SetNonBlocking(true).ok());
  std::vector<uint8_t> chunk(4096, 0x5A);
  struct iovec iov = {chunk.data(), chunk.size()};
  IoStatus status = IoStatus::kOk;
  for (int i = 0; i < 10000 && status == IoStatus::kOk; ++i) {
    struct iovec attempt = iov;
    status = a.Writev(&attempt, 1).status;
  }
  EXPECT_EQ(status, IoStatus::kWouldBlock);
  (void)b;
}

TEST(StreamTest, WritevAllDeliversLargeChainInOrder) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ASSERT_TRUE(a.SetNonBlocking(true).ok());
  // Total far beyond the socket buffer, so WritevAll must take multiple
  // kernel writes and resume mid-iovec after kWouldBlock.
  constexpr size_t kSegments = 8;
  constexpr size_t kSegmentBytes = 64 * 1024;
  std::vector<std::vector<uint8_t>> segments(kSegments);
  struct iovec iov[kSegments];
  uint8_t fill = 0;
  for (size_t s = 0; s < kSegments; ++s) {
    segments[s].resize(kSegmentBytes);
    for (auto& byte : segments[s]) {
      byte = fill++;
    }
    iov[s] = {segments[s].data(), segments[s].size()};
  }
  std::vector<uint8_t> received;
  std::thread reader([&b, &received] {
    std::vector<uint8_t> buf(1 << 16);
    while (received.size() < kSegments * kSegmentBytes) {
      const IoResult r = b.Read(buf.data(), buf.size());
      if (r.status != IoStatus::kOk) {
        break;
      }
      received.insert(received.end(), buf.begin(), buf.begin() + r.bytes);
    }
  });
  ASSERT_TRUE(a.WritevAll(iov, kSegments).ok());
  reader.join();
  ASSERT_EQ(received.size(), kSegments * kSegmentBytes);
  uint8_t expect = 0;
  size_t mismatches = 0;
  for (const uint8_t byte : received) {
    mismatches += (byte != expect++);
  }
  EXPECT_EQ(mismatches, 0u);
}

// --- scatter-gather under fault injection ------------------------------------

TEST(FaultStreamTest, WritevSplitsAtScriptedOffsetMidIovec) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto faults = std::make_shared<FaultSchedule>();
  faults->SplitWriteAt(6);  // inside the second iovec
  FaultStream a(std::move(pair.value().first), faults);
  FdStream& b = pair.value().second;

  uint8_t part1[] = {0, 1, 2, 3};
  uint8_t part2[] = {4, 5, 6, 7};
  struct iovec iov[2] = {{part1, sizeof(part1)}, {part2, sizeof(part2)}};
  // The chain runs iovec by iovec through the scripted write path: entry
  // one passes whole (4 bytes), entry two is split at absolute offset 6
  // (2 of its 4 bytes), and the chain stops at the short entry.
  const IoResult r = a.Writev(iov, 2);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 6u);
  EXPECT_EQ(faults->faults_applied(), 1u);

  uint8_t buf[8] = {};
  ASSERT_TRUE(b.ReadAll(buf, 6).ok());
  EXPECT_EQ(buf[5], 5);
}

TEST(FaultStreamTest, WritevAllResumesAcrossInjectedStalls) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto faults = std::make_shared<FaultSchedule>();
  // A split, then a would-block burst landing mid-iovec, then another
  // split: WritevAll must consume the chain in place and finish.
  faults->SplitWriteAt(3);
  faults->WouldBlockWriteAt(5, 2);
  faults->SplitWriteAt(9);
  FaultStream a(std::move(pair.value().first), faults);
  FdStream& b = pair.value().second;

  uint8_t part1[] = {10, 11, 12, 13, 14};
  uint8_t part2[] = {15, 16, 17, 18, 19, 20};
  struct iovec iov[2] = {{part1, sizeof(part1)}, {part2, sizeof(part2)}};
  ASSERT_TRUE(a.WritevAll(iov, 2).ok());
  EXPECT_GE(faults->faults_applied(), 3u);

  uint8_t buf[11] = {};
  ASSERT_TRUE(b.ReadAll(buf, sizeof(buf)).ok());
  for (size_t i = 0; i < sizeof(buf); ++i) {
    EXPECT_EQ(buf[i], 10 + i) << "byte " << i;
  }
}

TEST(FaultStreamTest, WritevAllStopsAtScriptedCut) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto faults = std::make_shared<FaultSchedule>();
  faults->CutWriteAt(5);  // peer "goes away" mid-second-iovec
  FaultStream a(std::move(pair.value().first), faults);

  uint8_t part1[] = {1, 2, 3};
  uint8_t part2[] = {4, 5, 6, 7};
  struct iovec iov[2] = {{part1, sizeof(part1)}, {part2, sizeof(part2)}};
  EXPECT_FALSE(a.WritevAll(iov, 2).ok());
  // The bytes before the cut were accepted; the peer can read exactly 5.
  uint8_t buf[8] = {};
  const IoResult r = pair.value().second.Read(buf, sizeof(buf));
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 5u);
}

TEST(FaultStreamTest, WritevWithoutScheduleIsPassThrough) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  FaultStream a(std::move(pair.value().first));
  uint8_t part1[] = {'a', 'b'};
  uint8_t part2[] = {'c'};
  struct iovec iov[2] = {{part1, sizeof(part1)}, {part2, sizeof(part2)}};
  const IoResult r = a.Writev(iov, 2);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 3u);
  char buf[4] = {};
  ASSERT_TRUE(pair.value().second.ReadAll(buf, 3).ok());
  EXPECT_STREQ(buf, "abc");
}

TEST(ListenerTest, TcpAcceptAndConnect) {
  auto listener = Listener::ListenTcp(17891);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  std::thread connector([] {
    auto stream = ConnectTcp("127.0.0.1", 17891);
    ASSERT_TRUE(stream.ok());
    const char byte = 'x';
    stream.value().WriteAll(&byte, 1);
  });
  auto accepted = listener.value().Accept();
  ASSERT_TRUE(accepted.ok());
  auto& [stream, peer] = accepted.value();
  EXPECT_EQ(peer.family, 0);  // IPv4
  EXPECT_EQ(peer.ToString(), "127.0.0.1");
  char byte = 0;
  ASSERT_TRUE(stream.ReadAll(&byte, 1).ok());
  EXPECT_EQ(byte, 'x');
  connector.join();
}

TEST(ListenerTest, UnixAcceptAndConnect) {
  const std::string path = "/tmp/.AF-unix-test/AFtest";
  auto listener = Listener::ListenUnix(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  std::thread connector([&path] {
    auto stream = ConnectUnix(path);
    ASSERT_TRUE(stream.ok());
    const char byte = 'u';
    stream.value().WriteAll(&byte, 1);
  });
  auto accepted = listener.value().Accept();
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted.value().second.IsLocal());
  char byte = 0;
  ASSERT_TRUE(accepted.value().first.ReadAll(&byte, 1).ok());
  EXPECT_EQ(byte, 'u');
  connector.join();
}

TEST(PollerTest, DetectsReadable) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  Poller poller;
  poller.Watch(b.fd(), true, false);
  EXPECT_TRUE(poller.Wait(0).empty());
  const char byte = '!';
  a.WriteAll(&byte, 1);
  const auto events = poller.Wait(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, b.fd());
  EXPECT_TRUE(events[0].readable);
  poller.Unwatch(b.fd());
  EXPECT_EQ(poller.watched(), 0u);
}

TEST(SimDatagramTest, LosslessDelivery) {
  auto [a, b] = SimDatagramChannel::CreatePair();
  const std::vector<uint8_t> packet = {1, 2, 3};
  a->Send(packet);
  a->Send({packet.data(), 2});
  EXPECT_TRUE(b->HasPending());
  EXPECT_EQ(b->Receive(), packet);
  EXPECT_EQ(b->Receive().size(), 2u);
  EXPECT_FALSE(b->HasPending());
  EXPECT_TRUE(b->Receive().empty());

  b->Send(packet);
  EXPECT_EQ(a->Receive(), packet);
}

TEST(SimDatagramTest, LossIsDeterministicFromSeed) {
  auto CountDelivered = [](uint32_t seed) {
    auto [a, b] = SimDatagramChannel::CreatePair();
    a->SetLossRate(0.3);
    a->SetSeed(seed);
    int delivered = 0;
    for (int i = 0; i < 1000; ++i) {
      a->Send(std::vector<uint8_t>{static_cast<uint8_t>(i)});
      if (b->HasPending()) {
        b->Receive();
        ++delivered;
      }
    }
    return delivered;
  };
  const int run1 = CountDelivered(42);
  const int run2 = CountDelivered(42);
  EXPECT_EQ(run1, run2);
  // About 70% should get through.
  EXPECT_NEAR(run1, 700, 60);
}

TEST(UdpChannelTest, PairRoundTrip) {
  auto pair = UdpChannel::CreatePair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  auto& [a, b] = pair.value();
  const std::vector<uint8_t> packet = {9, 8, 7, 6};
  a->Send(packet);
  // UDP over loopback is effectively synchronous, but poll briefly anyway.
  for (int i = 0; i < 100 && !b->HasPending(); ++i) {
    usleep(1000);
  }
  ASSERT_TRUE(b->HasPending());
  EXPECT_EQ(b->Receive(), packet);
}

}  // namespace
}  // namespace af
