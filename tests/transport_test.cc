// Transport layer: stream pairs, listeners, server-name parsing, the
// poller, and the datagram channels (real UDP and simulated-lossy).
#include <gtest/gtest.h>

#include <thread>

#include "transport/datagram.h"
#include "transport/listener.h"
#include "transport/poller.h"
#include "transport/stream.h"

namespace af {
namespace {

TEST(ServerNameTest, Parsing) {
  auto tcp = ParseServerName("myhost:2");
  ASSERT_TRUE(tcp.has_value());
  EXPECT_EQ(tcp->kind, ServerAddr::Kind::kTcp);
  EXPECT_EQ(tcp->host, "myhost");
  EXPECT_EQ(tcp->display, 2);
  EXPECT_EQ(tcp->TcpPort(), kAudioFileBasePort + 2);

  auto local = ParseServerName(":0");
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(local->kind, ServerAddr::Kind::kUnix);
  EXPECT_EQ(local->UnixPath(), "/tmp/.AF-unix/AF0");

  auto unix_name = ParseServerName("unix:3");
  ASSERT_TRUE(unix_name.has_value());
  EXPECT_EQ(unix_name->kind, ServerAddr::Kind::kUnix);
  EXPECT_EQ(unix_name->display, 3);

  EXPECT_FALSE(ParseServerName("no-colon").has_value());
  EXPECT_FALSE(ParseServerName("host:abc").has_value());
}

TEST(StreamTest, PairRoundTrip) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  const char msg[] = "hello audio";
  ASSERT_TRUE(a.WriteAll(msg, sizeof(msg)).ok());
  char buf[sizeof(msg)] = {};
  ASSERT_TRUE(b.ReadAll(buf, sizeof(buf)).ok());
  EXPECT_STREQ(buf, "hello audio");
}

TEST(StreamTest, ReadAfterCloseReportsClosed) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  a.Close();
  char buf[4];
  const IoResult r = b.Read(buf, sizeof(buf));
  EXPECT_EQ(r.status, IoStatus::kClosed);
}

TEST(StreamTest, NonBlockingReadWouldBlock) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ASSERT_TRUE(b.SetNonBlocking(true).ok());
  char buf[4];
  EXPECT_EQ(b.Read(buf, sizeof(buf)).status, IoStatus::kWouldBlock);
  (void)a;
}

TEST(ListenerTest, TcpAcceptAndConnect) {
  auto listener = Listener::ListenTcp(17891);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  std::thread connector([] {
    auto stream = ConnectTcp("127.0.0.1", 17891);
    ASSERT_TRUE(stream.ok());
    const char byte = 'x';
    stream.value().WriteAll(&byte, 1);
  });
  auto accepted = listener.value().Accept();
  ASSERT_TRUE(accepted.ok());
  auto& [stream, peer] = accepted.value();
  EXPECT_EQ(peer.family, 0);  // IPv4
  EXPECT_EQ(peer.ToString(), "127.0.0.1");
  char byte = 0;
  ASSERT_TRUE(stream.ReadAll(&byte, 1).ok());
  EXPECT_EQ(byte, 'x');
  connector.join();
}

TEST(ListenerTest, UnixAcceptAndConnect) {
  const std::string path = "/tmp/.AF-unix-test/AFtest";
  auto listener = Listener::ListenUnix(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  std::thread connector([&path] {
    auto stream = ConnectUnix(path);
    ASSERT_TRUE(stream.ok());
    const char byte = 'u';
    stream.value().WriteAll(&byte, 1);
  });
  auto accepted = listener.value().Accept();
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted.value().second.IsLocal());
  char byte = 0;
  ASSERT_TRUE(accepted.value().first.ReadAll(&byte, 1).ok());
  EXPECT_EQ(byte, 'u');
  connector.join();
}

TEST(PollerTest, DetectsReadable) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  Poller poller;
  poller.Watch(b.fd(), true, false);
  EXPECT_TRUE(poller.Wait(0).empty());
  const char byte = '!';
  a.WriteAll(&byte, 1);
  const auto events = poller.Wait(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, b.fd());
  EXPECT_TRUE(events[0].readable);
  poller.Unwatch(b.fd());
  EXPECT_EQ(poller.watched(), 0u);
}

TEST(SimDatagramTest, LosslessDelivery) {
  auto [a, b] = SimDatagramChannel::CreatePair();
  const std::vector<uint8_t> packet = {1, 2, 3};
  a->Send(packet);
  a->Send({packet.data(), 2});
  EXPECT_TRUE(b->HasPending());
  EXPECT_EQ(b->Receive(), packet);
  EXPECT_EQ(b->Receive().size(), 2u);
  EXPECT_FALSE(b->HasPending());
  EXPECT_TRUE(b->Receive().empty());

  b->Send(packet);
  EXPECT_EQ(a->Receive(), packet);
}

TEST(SimDatagramTest, LossIsDeterministicFromSeed) {
  auto CountDelivered = [](uint32_t seed) {
    auto [a, b] = SimDatagramChannel::CreatePair();
    a->SetLossRate(0.3);
    a->SetSeed(seed);
    int delivered = 0;
    for (int i = 0; i < 1000; ++i) {
      a->Send(std::vector<uint8_t>{static_cast<uint8_t>(i)});
      if (b->HasPending()) {
        b->Receive();
        ++delivered;
      }
    }
    return delivered;
  };
  const int run1 = CountDelivered(42);
  const int run2 = CountDelivered(42);
  EXPECT_EQ(run1, run2);
  // About 70% should get through.
  EXPECT_NEAR(run1, 700, 60);
}

TEST(UdpChannelTest, PairRoundTrip) {
  auto pair = UdpChannel::CreatePair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  auto& [a, b] = pair.value();
  const std::vector<uint8_t> packet = {9, 8, 7, 6};
  a->Send(packet);
  // UDP over loopback is effectively synchronous, but poll briefly anyway.
  for (int i = 0; i < 100 && !b->HasPending(); ++i) {
    usleep(1000);
  }
  ASSERT_TRUE(b->HasPending());
  EXPECT_EQ(b->Receive(), packet);
}

}  // namespace
}  // namespace af
