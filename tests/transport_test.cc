// Transport layer: stream pairs, listeners, server-name parsing, the
// poller, and the datagram channels (real UDP and simulated-lossy).
#include <gtest/gtest.h>

#include <unistd.h>

#include <thread>

#include "transport/datagram.h"
#include "transport/listener.h"
#include "transport/poller.h"
#include "transport/stream.h"

namespace af {
namespace {

TEST(ServerNameTest, Parsing) {
  auto tcp = ParseServerName("myhost:2");
  ASSERT_TRUE(tcp.has_value());
  EXPECT_EQ(tcp->kind, ServerAddr::Kind::kTcp);
  EXPECT_EQ(tcp->host, "myhost");
  EXPECT_EQ(tcp->display, 2);
  EXPECT_EQ(tcp->TcpPort(), kAudioFileBasePort + 2);

  auto local = ParseServerName(":0");
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(local->kind, ServerAddr::Kind::kUnix);
  EXPECT_EQ(local->UnixPath(), "/tmp/.AF-unix/AF0");

  auto unix_name = ParseServerName("unix:3");
  ASSERT_TRUE(unix_name.has_value());
  EXPECT_EQ(unix_name->kind, ServerAddr::Kind::kUnix);
  EXPECT_EQ(unix_name->display, 3);

  EXPECT_FALSE(ParseServerName("no-colon").has_value());
  EXPECT_FALSE(ParseServerName("host:abc").has_value());
}

TEST(ServerNameTest, MalformedInputsRejected) {
  EXPECT_FALSE(ParseServerName("").has_value());          // nothing at all
  EXPECT_FALSE(ParseServerName(":").has_value());         // colon, no display
  EXPECT_FALSE(ParseServerName("host:").has_value());     // host, no display
  EXPECT_FALSE(ParseServerName("unix:abc").has_value());  // non-numeric
  EXPECT_FALSE(ParseServerName("host:2x").has_value());   // trailing junk
  EXPECT_FALSE(ParseServerName("host:-1").has_value());   // negative display
  // Huge display numbers must fail rather than wrap the 16-bit TCP port.
  EXPECT_FALSE(ParseServerName("host:99999999999999999999").has_value());
  EXPECT_FALSE(ParseServerName("host:65536").has_value());
  const int max_display = 65535 - kAudioFileBasePort;
  EXPECT_FALSE(ParseServerName("host:" + std::to_string(max_display + 1)).has_value());
  // The largest display whose port still fits is accepted.
  auto edge = ParseServerName("host:" + std::to_string(max_display));
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->TcpPort(), 65535);
}

TEST(StreamTest, PairRoundTrip) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  const char msg[] = "hello audio";
  ASSERT_TRUE(a.WriteAll(msg, sizeof(msg)).ok());
  char buf[sizeof(msg)] = {};
  ASSERT_TRUE(b.ReadAll(buf, sizeof(buf)).ok());
  EXPECT_STREQ(buf, "hello audio");
}

TEST(StreamTest, ReadAfterCloseReportsClosed) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  a.Close();
  char buf[4];
  const IoResult r = b.Read(buf, sizeof(buf));
  EXPECT_EQ(r.status, IoStatus::kClosed);
}

TEST(StreamTest, NonBlockingReadWouldBlock) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ASSERT_TRUE(b.SetNonBlocking(true).ok());
  char buf[4];
  EXPECT_EQ(b.Read(buf, sizeof(buf)).status, IoStatus::kWouldBlock);
  (void)a;
}

TEST(StreamTest, PartialReadReturnsWhatIsBuffered) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ASSERT_TRUE(a.WriteAll("abc", 3).ok());
  char buf[16] = {};
  const IoResult r = b.Read(buf, sizeof(buf));
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, 3u);  // kOk with fewer bytes than asked
}

TEST(StreamTest, WriteToClosedPeerReportsClosed) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  b.Close();
  const char byte = 'x';
  // EPIPE must surface as kClosed (and must not raise SIGPIPE).
  EXPECT_EQ(a.Write(&byte, 1).status, IoStatus::kClosed);
}

TEST(StreamTest, NonBlockingWriteFillsBufferThenWouldBlock) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ASSERT_TRUE(a.SetNonBlocking(true).ok());
  std::vector<uint8_t> chunk(4096, 0x55);
  IoStatus status = IoStatus::kOk;
  // Nobody reads from b, so the socket buffer must eventually fill.
  for (int i = 0; i < 10000 && status == IoStatus::kOk; ++i) {
    status = a.Write(chunk.data(), chunk.size()).status;
  }
  EXPECT_EQ(status, IoStatus::kWouldBlock);
  // Draining the peer makes the stream writable again.
  ASSERT_TRUE(b.SetNonBlocking(true).ok());
  std::vector<uint8_t> sink(1 << 16);
  while (b.Read(sink.data(), sink.size()).status == IoStatus::kOk) {
  }
  const IoResult r = a.Write(chunk.data(), chunk.size());
  EXPECT_EQ(r.status, IoStatus::kOk);
  (void)b;
}

TEST(StreamTest, BadFdReportsError) {
  // A stream whose fd the kernel no longer recognises must report kError,
  // not kClosed: the distinction separates peer teardown from local bugs.
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ::close(a.fd());  // yank the descriptor out from under the stream
  char buf[4];
  EXPECT_EQ(a.Read(buf, sizeof(buf)).status, IoStatus::kError);
  EXPECT_EQ(a.Write(buf, sizeof(buf)).status, IoStatus::kError);
  (void)b;
}

TEST(ListenerTest, TcpAcceptAndConnect) {
  auto listener = Listener::ListenTcp(17891);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  std::thread connector([] {
    auto stream = ConnectTcp("127.0.0.1", 17891);
    ASSERT_TRUE(stream.ok());
    const char byte = 'x';
    stream.value().WriteAll(&byte, 1);
  });
  auto accepted = listener.value().Accept();
  ASSERT_TRUE(accepted.ok());
  auto& [stream, peer] = accepted.value();
  EXPECT_EQ(peer.family, 0);  // IPv4
  EXPECT_EQ(peer.ToString(), "127.0.0.1");
  char byte = 0;
  ASSERT_TRUE(stream.ReadAll(&byte, 1).ok());
  EXPECT_EQ(byte, 'x');
  connector.join();
}

TEST(ListenerTest, UnixAcceptAndConnect) {
  const std::string path = "/tmp/.AF-unix-test/AFtest";
  auto listener = Listener::ListenUnix(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  std::thread connector([&path] {
    auto stream = ConnectUnix(path);
    ASSERT_TRUE(stream.ok());
    const char byte = 'u';
    stream.value().WriteAll(&byte, 1);
  });
  auto accepted = listener.value().Accept();
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted.value().second.IsLocal());
  char byte = 0;
  ASSERT_TRUE(accepted.value().first.ReadAll(&byte, 1).ok());
  EXPECT_EQ(byte, 'u');
  connector.join();
}

TEST(PollerTest, DetectsReadable) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  Poller poller;
  poller.Watch(b.fd(), true, false);
  EXPECT_TRUE(poller.Wait(0).empty());
  const char byte = '!';
  a.WriteAll(&byte, 1);
  const auto events = poller.Wait(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, b.fd());
  EXPECT_TRUE(events[0].readable);
  poller.Unwatch(b.fd());
  EXPECT_EQ(poller.watched(), 0u);
}

TEST(SimDatagramTest, LosslessDelivery) {
  auto [a, b] = SimDatagramChannel::CreatePair();
  const std::vector<uint8_t> packet = {1, 2, 3};
  a->Send(packet);
  a->Send({packet.data(), 2});
  EXPECT_TRUE(b->HasPending());
  EXPECT_EQ(b->Receive(), packet);
  EXPECT_EQ(b->Receive().size(), 2u);
  EXPECT_FALSE(b->HasPending());
  EXPECT_TRUE(b->Receive().empty());

  b->Send(packet);
  EXPECT_EQ(a->Receive(), packet);
}

TEST(SimDatagramTest, LossIsDeterministicFromSeed) {
  auto CountDelivered = [](uint32_t seed) {
    auto [a, b] = SimDatagramChannel::CreatePair();
    a->SetLossRate(0.3);
    a->SetSeed(seed);
    int delivered = 0;
    for (int i = 0; i < 1000; ++i) {
      a->Send(std::vector<uint8_t>{static_cast<uint8_t>(i)});
      if (b->HasPending()) {
        b->Receive();
        ++delivered;
      }
    }
    return delivered;
  };
  const int run1 = CountDelivered(42);
  const int run2 = CountDelivered(42);
  EXPECT_EQ(run1, run2);
  // About 70% should get through.
  EXPECT_NEAR(run1, 700, 60);
}

TEST(UdpChannelTest, PairRoundTrip) {
  auto pair = UdpChannel::CreatePair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  auto& [a, b] = pair.value();
  const std::vector<uint8_t> packet = {9, 8, 7, 6};
  a->Send(packet);
  // UDP over loopback is effectively synchronous, but poll briefly anyway.
  for (int i = 0; i < 100 && !b->HasPending(); ++i) {
    usleep(1000);
  }
  ASSERT_TRUE(b->HasPending());
  EXPECT_EQ(b->Receive(), packet);
}

}  // namespace
}  // namespace af
