// Shared plumbing for the protocol-torture suites: a deterministic
// "server drained" barrier (no sleeps anywhere in the hostile-network
// tests), raw-connection setup helpers, and environment knobs that let CI
// dial the soak depth up without editing code.
#ifndef AF_TESTS_TORTURE_UTIL_H_
#define AF_TESTS_TORTURE_UTIL_H_

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "clients/server_runner.h"
#include "server/shard.h"
#include "proto/requests.h"
#include "proto/setup.h"
#include "proto/trace_wire.h"

namespace af {
namespace torture {

// A canonical, well-formed request for every opcode. The torture sweep
// cuts these at every byte boundary, and the decoder test round-trips each
// through the wire decoder; keeping the corpus here means a new opcode
// fails both suites (via the exhaustive switch) until it is added.
inline std::vector<uint8_t> CanonicalRequest(Opcode op) {
  static const uint8_t sample_data[32] = {0x7F};
  WireWriter w;
  const size_t header = BeginRequest(w, op);
  switch (op) {
    case Opcode::kSelectEvents:
      SelectEventsReq{}.Encode(w);
      break;
    case Opcode::kCreateAC:
      CreateACReq{}.Encode(w);
      break;
    case Opcode::kChangeACAttributes:
      ChangeACAttributesReq{}.Encode(w);
      break;
    case Opcode::kFreeAC:
      FreeACReq{}.Encode(w);
      break;
    case Opcode::kPlaySamples: {
      PlaySamplesReq req;
      req.nbytes = sizeof(sample_data);
      req.data = sample_data;
      req.Encode(w);
      break;
    }
    case Opcode::kRecordSamples: {
      RecordSamplesReq req;
      req.nbytes = 64;
      req.flags = kRecordNoBlock;
      req.Encode(w);
      break;
    }
    case Opcode::kGetTime:
      GetTimeReq{}.Encode(w);
      break;
    case Opcode::kResyncTime: {
      ResyncTimeReq req;
      req.client_watermark = 48000;
      req.Encode(w);
      break;
    }
    case Opcode::kQueryPhone:
      QueryPhoneReq{}.Encode(w);
      break;
    case Opcode::kEnablePassThrough:
    case Opcode::kDisablePassThrough:
      PassThroughReq{}.Encode(w);
      break;
    case Opcode::kHookSwitch:
      HookSwitchReq{}.Encode(w);
      break;
    case Opcode::kFlashHook:
      FlashHookReq{}.Encode(w);
      break;
    case Opcode::kEnableGainControl:
    case Opcode::kDisableGainControl:
      GainControlReq{}.Encode(w);
      break;
    case Opcode::kDialPhone: {
      DialPhoneReq req;
      req.number = "5551212";
      req.Encode(w);
      break;
    }
    case Opcode::kSetInputGain:
    case Opcode::kSetOutputGain:
      SetGainReq{}.Encode(w);
      break;
    case Opcode::kQueryInputGain:
    case Opcode::kQueryOutputGain:
      QueryGainReq{}.Encode(w);
      break;
    case Opcode::kEnableInput:
    case Opcode::kEnableOutput:
    case Opcode::kDisableInput:
    case Opcode::kDisableOutput:
      IOEnableReq{}.Encode(w);
      break;
    case Opcode::kSetAccessControl:
      SetAccessControlReq{}.Encode(w);
      break;
    case Opcode::kChangeHosts: {
      ChangeHostsReq req;
      req.address = {127, 0, 0, 1};
      req.Encode(w);
      break;
    }
    case Opcode::kListHosts:
      ListHostsReq{}.Encode(w);
      break;
    case Opcode::kInternAtom: {
      InternAtomReq req;
      req.name = "TORTURE";
      req.Encode(w);
      break;
    }
    case Opcode::kGetAtomName: {
      GetAtomNameReq req;
      req.atom = 1;
      req.Encode(w);
      break;
    }
    case Opcode::kChangeProperty: {
      ChangePropertyReq req;
      req.property = 1;
      req.type = 1;
      req.data = {'t', 'o', 'r', 't', 'u', 'r', 'e', '!'};
      req.Encode(w);
      break;
    }
    case Opcode::kDeleteProperty:
      DeletePropertyReq{}.Encode(w);
      break;
    case Opcode::kGetProperty:
      GetPropertyReq{}.Encode(w);
      break;
    case Opcode::kListProperties:
      ListPropertiesReq{}.Encode(w);
      break;
    case Opcode::kNoOperation:
    case Opcode::kSyncConnection:
    case Opcode::kListExtensions:
    case Opcode::kGetServerStats:
      break;  // empty bodies
    case Opcode::kGetTrace:
      GetTraceReq{}.Encode(w);
      break;
    case Opcode::kQueryExtension: {
      QueryExtensionReq req;
      req.name = "NOT-AN-EXTENSION";
      req.Encode(w);
      break;
    }
    case Opcode::kKillClient:
      KillClientReq{}.Encode(w);
      break;
  }
  EndRequest(w, header);
  return w.Take();
}

// Deterministic server-drained barrier. Each pass drives every shard
// through at least one full poll/dispatch iteration: a RunOnLoop round
// trip for shard 0, plus a posted no-op awaited on every other shard, so a
// connection whose socket holds pending bytes (or an EOF, or a borrow
// hand-back sitting in a mailbox) makes at least one hop of progress per
// pass even when the host's scheduler starves the shard threads; polling
// the client count through it converges without a single sleep. Returns
// the last observed count (== expected on success; callers print the
// fault trace on mismatch).
inline size_t DrainToClientCount(ServerRunner& runner, size_t expected,
                                 int max_iterations = 20000) {
  auto& srv = runner.server();
  const size_t shards = srv.num_shards();
  size_t count = static_cast<size_t>(-1);
  for (int i = 0; i < max_iterations; ++i) {
    runner.RunOnLoop([&] { count = srv.client_count(); });
    if (count == expected) {
      break;
    }
    if (shards > 1) {
      std::mutex mu;
      std::condition_variable cv;
      size_t done = 0;
      for (uint32_t s = 1; s < shards; ++s) {
        srv.PostToShard(s, [&] {
          std::lock_guard<std::mutex> lock(mu);
          ++done;
          cv.notify_one();
        });
      }
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done == shards - 1; });
    }
  }
  if (count != expected && std::getenv("AF_TORTURE_DEBUG") != nullptr) {
    for (size_t s = 0; s < shards; ++s) {
      Shard* sh = srv.shard(s);
      std::fprintf(stderr,
                   "shard %zu: clients=%zu iters=%llu posted=%llu drained=%llu "
                   "wakes=%llu spills=%llu\n",
                   s, sh->client_count(),
                   (unsigned long long)sh->metrics().loop_iterations.Value(),
                   (unsigned long long)sh->metrics().cross_shard_posted.Value(),
                   (unsigned long long)sh->metrics().cross_shard_drained.Value(),
                   (unsigned long long)sh->metrics().mailbox_wakes.Value(),
                   (unsigned long long)sh->mailbox_spills());
    }
  }
  return count;
}

// Writes a setup request on a raw (library-bypassing) stream and consumes
// the success reply. Returns false on any transport or decode failure.
inline bool RawSetup(FdStream& raw) {
  SetupRequest setup;
  const auto bytes = setup.Encode();
  if (!raw.WriteAll(bytes.data(), bytes.size()).ok()) {
    return false;
  }
  uint8_t fixed[SetupReply::kFixedBytes];
  if (!raw.ReadAll(fixed, sizeof(fixed)).ok()) {
    return false;
  }
  bool success = false;
  uint32_t additional = 0;
  if (!SetupReply::DecodeFixed(fixed, HostWireOrder(), &success, &additional) || !success) {
    return false;
  }
  std::vector<uint8_t> rest(additional * 4u);
  return raw.ReadAll(rest.data(), rest.size()).ok();
}

// Soak depth knobs: scripts/ci.sh raises AF_TORTURE_ROUNDS for the
// sanitizer soak; AF_TORTURE_SEED replays a specific failing walk.
inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::atoi(v) : fallback;
}

}  // namespace torture
}  // namespace af

#endif  // AF_TESTS_TORTURE_UTIL_H_
