// Shared plumbing for the protocol-torture suites: a deterministic
// "server drained" barrier (no sleeps anywhere in the hostile-network
// tests), raw-connection setup helpers, and environment knobs that let CI
// dial the soak depth up without editing code.
#ifndef AF_TESTS_TORTURE_UTIL_H_
#define AF_TESTS_TORTURE_UTIL_H_

#include <cstdlib>
#include <string>

#include "clients/server_runner.h"
#include "proto/setup.h"

namespace af {
namespace torture {

// Deterministic server-drained barrier. Every RunOnLoop round trip wakes
// the loop and completes at least one full poll/dispatch iteration, so a
// connection whose socket holds pending bytes (or an EOF) is guaranteed to
// make progress between samples; polling the client count through it
// converges without a single sleep. Returns the last observed count
// (== expected on success; callers print the fault trace on mismatch).
inline size_t DrainToClientCount(ServerRunner& runner, size_t expected,
                                 int max_iterations = 20000) {
  size_t count = static_cast<size_t>(-1);
  for (int i = 0; i < max_iterations; ++i) {
    runner.RunOnLoop([&] { count = runner.server().client_count(); });
    if (count == expected) {
      break;
    }
  }
  return count;
}

// Writes a setup request on a raw (library-bypassing) stream and consumes
// the success reply. Returns false on any transport or decode failure.
inline bool RawSetup(FdStream& raw) {
  SetupRequest setup;
  const auto bytes = setup.Encode();
  if (!raw.WriteAll(bytes.data(), bytes.size()).ok()) {
    return false;
  }
  uint8_t fixed[SetupReply::kFixedBytes];
  if (!raw.ReadAll(fixed, sizeof(fixed)).ok()) {
    return false;
  }
  bool success = false;
  uint32_t additional = 0;
  if (!SetupReply::DecodeFixed(fixed, HostWireOrder(), &success, &additional) || !success) {
    return false;
  }
  std::vector<uint8_t> rest(additional * 4u);
  return raw.ReadAll(rest.data(), rest.size()).ok();
}

// Soak depth knobs: scripts/ci.sh raises AF_TORTURE_ROUNDS for the
// sanitizer soak; AF_TORTURE_SEED replays a specific failing walk.
inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::atoi(v) : fallback;
}

}  // namespace torture
}  // namespace af

#endif  // AF_TESTS_TORTURE_UTIL_H_
