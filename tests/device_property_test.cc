// Property test: the buffered device against an exact reference model.
//
// Random play schedules (random times, lengths, mix/preempt, overlaps,
// past-clipped requests) are applied both to a manually clocked CODEC
// device and to a byte-level model of the paper's semantics:
//
//   output[t] = silence, then for each request in arrival order:
//     preempt: output[t] = sample
//     mix:     output[t] = mix_u(output[t], sample)   (the AF_mix_u table)
//   requests wholly or partly in the past are clipped at dispatch time.
//
// What the simulated DAC plays must equal the model byte for byte. This
// exercises the ring wrap, lazy silence fill, the mix/copy split at
// timeLastValid, and write-through - under schedules no hand-written test
// would try.
#include <gtest/gtest.h>

#include <random>

#include "devices/codec_device.h"
#include "dsp/g711.h"
#include "dsp/gain.h"
#include "dsp/mix.h"

namespace af {
namespace {

constexpr size_t kHorizon = 100000;  // virtual samples per case

class PlayScheduleProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PlayScheduleProperty, DeviceMatchesReferenceModel) {
  std::mt19937 rng(GetParam());
  auto clock = std::make_shared<ManualSampleClock>(8000);
  auto dev = CodecDevice::Create(clock);
  auto sink = std::make_shared<CaptureSink>(kHorizon * 2);
  dev->sim().SetSink(sink);
  dev->Update();

  // One AC per (gain, preempt) combination, as distinct clients would own.
  const int kGains[] = {-12, -6, 0, 6};
  ServerAC acs[8];
  for (int g = 0; g < 4; ++g) {
    for (int p = 0; p < 2; ++p) {
      ServerAC& ac = acs[g * 2 + p];
      ac.device = dev.get();
      ac.attrs.channels = 1;
      ac.attrs.play_gain_db = kGains[g];
      ac.attrs.preempt = p;
      ASSERT_TRUE(dev->MakeACOps(ac.attrs, &ac.ops).ok());
    }
  }

  std::vector<uint8_t> model(kHorizon + 16384, kMulawSilence);

  // Any mu-law byte except the negative-zero code 0x7F (which the encoder
  // canonicalizes, and which no encode ever produces).
  const auto random_byte = [&rng]() -> uint8_t {
    for (;;) {
      const uint8_t b = static_cast<uint8_t>(rng() & 0xFF);
      if (b != 0x7F) {
        return b;
      }
    }
  };

  while (clock->Now() < kHorizon) {
    // Advance the hardware a random amount, as wall time would.
    clock->Advance(rng() % 500 + 1);  // stay well inside the 1024-frame hw ring
    dev->Update();
    const ATime now = dev->GetTime();

    // A random request: sometimes straddling "now", sometimes well ahead,
    // always comfortably inside the four-second window.
    const int32_t offset = static_cast<int32_t>(rng() % 6000) - 700;
    const ATime start = now + static_cast<ATime>(offset);
    const size_t len = rng() % 2500 + 1;
    const size_t which = rng() % 8;
    ServerAC& ac = acs[which];
    const bool preempt = ac.attrs.preempt != 0;
    const uint8_t value = random_byte();
    std::vector<uint8_t> data(len, value);

    PlayOutcome outcome;
    ASSERT_TRUE(dev->Play(ac, start, data, false, &outcome).ok());
    ASSERT_FALSE(outcome.would_block) << "request escaped the window";

    // Model: the AC play gain applies per sample before mixing (the same
    // 256-entry table the server uses), then clip the past and mix or
    // overwrite.
    const uint8_t gained = MulawGainTable(ac.attrs.play_gain_db)[value];
    for (size_t i = 0; i < len; ++i) {
      const ATime t = start + static_cast<ATime>(i);
      if (TimeBefore(t, now) || static_cast<size_t>(t) >= model.size()) {
        continue;
      }
      uint8_t& slot = model[static_cast<size_t>(t)];
      slot = preempt ? gained : MixMulaw(slot, gained);
    }
  }

  // Drain everything scheduled (in update-period steps), then compare.
  for (int i = 0; i < 40; ++i) {
    clock->Advance(500);
    dev->Update();
  }
  const auto heard = sink->Segment(0, kHorizon);
  ASSERT_EQ(heard.size(), kHorizon);
  for (size_t t = 0; t < kHorizon; ++t) {
    ASSERT_EQ(heard[t], model[t]) << "sample at device time " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlayScheduleProperty,
                         ::testing::Values(1u, 2u, 3u, 47u, 1993u, 0xC0FFEEu));

class RecordScheduleProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RecordScheduleProperty, RecordMatchesSource) {
  std::mt19937 rng(GetParam());
  auto clock = std::make_shared<ManualSampleClock>(8000);
  auto dev = CodecDevice::Create(clock);
  auto source = std::make_shared<BufferSource>(1 << 18, 1, kMulawSilence);
  dev->sim().SetSource(source);
  dev->Update();
  dev->AddRecordRef();  // recording client present from the start

  ServerAC ac;
  ac.device = dev.get();
  ac.attrs.channels = 1;
  ASSERT_TRUE(dev->MakeACOps(ac.attrs, &ac.ops).ok());

  // The "microphone" model: seeded ahead of time with random bytes.
  std::vector<uint8_t> truth(kHorizon);
  for (auto& b : truth) {
    b = static_cast<uint8_t>(rng() & 0xFF);
  }
  source->PutAt(0, truth);

  while (clock->Now() < kHorizon) {
    clock->Advance(rng() % 500 + 1);  // stay well inside the 1024-frame hw ring
    dev->Update();
    const ATime now = dev->GetTime();

    // Random non-blocking record of the recent past.
    const size_t len = rng() % 3000 + 1;
    const int32_t back = static_cast<int32_t>(rng() % 20000);
    const ATime start = now - static_cast<ATime>(back);
    std::span<const uint8_t> out;
    RecordOutcome outcome;
    ASSERT_TRUE(dev->Record(ac, start, len, false, true, &out, &outcome).ok());

    for (size_t i = 0; i < out.size(); ++i) {
      const ATime t = start + static_cast<ATime>(i);
      // Within the retained window the data must be exact; our schedule
      // stays well inside it.
      if (TimeBefore(t, now - static_cast<ATime>(dev->rec_buffer().nframes()))) {
        continue;  // beyond retention: silence by contract, skip
      }
      const uint8_t expected = static_cast<size_t>(t) < truth.size()
                                   ? truth[static_cast<size_t>(t)]
                                   : kMulawSilence;
      ASSERT_EQ(out[i], expected) << "sample at device time " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordScheduleProperty,
                         ::testing::Values(11u, 29u, 1993u));

}  // namespace
}  // namespace af
