// End-to-end audio integration: real-time clocks, a server loop thread,
// and clients doing exactly what the paper's clients do - play with
// explicit time, record the recent past, mix, preempt, block, and hear the
// result on the simulated hardware.
#include <gtest/gtest.h>

#include <cmath>

#include "client/audio_context.h"
#include "clients/server_runner.h"
#include "dsp/g711.h"
#include "dsp/power.h"
#include "dsp/tones.h"

namespace af {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerRunner::Config config;
    config.with_codec = true;
    config.realtime = true;
    runner_ = ServerRunner::Start(config);
    ASSERT_NE(runner_, nullptr);
    sink_ = std::make_shared<CaptureSink>();
    source_ = std::make_shared<BufferSource>(1 << 16, 1, kMulawSilence);
    runner_->RunOnLoop([this] {
      runner_->codec()->sim().SetSink(sink_);
      runner_->codec()->sim().SetSource(source_);
    });
    auto conn = runner_->ConnectInProcess();
    ASSERT_TRUE(conn.ok());
    conn_ = conn.take();
    conn_->SetErrorHandler(
        [](AFAudioConn&, const ErrorPacket& error) {
          ADD_FAILURE() << "protocol error: " << ErrorText(error.code);
        });
  }

  AC* MakeAC(uint32_t mask = 0, ACAttributes attrs = ACAttributes()) {
    auto ac = conn_->CreateAC(0, mask, attrs);
    EXPECT_TRUE(ac.ok());
    return ac.value();
  }

  // Waits until device time reaches target.
  void WaitUntil(ATime target) {
    for (;;) {
      auto t = conn_->GetTime(0);
      ASSERT_TRUE(t.ok());
      if (TimeAtOrAfter(t.value(), target)) {
        return;
      }
      SleepMicros(10000);
    }
  }

  std::unique_ptr<ServerRunner> runner_;
  std::shared_ptr<CaptureSink> sink_;
  std::shared_ptr<BufferSource> source_;
  std::unique_ptr<AFAudioConn> conn_;
};

TEST_F(IntegrationTest, PlayIsHeardExactlyWhenScheduled) {
  AC* ac = MakeAC();
  std::vector<uint8_t> pattern(1600);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i % 240);
  }
  auto now = conn_->GetTime(0);
  ASSERT_TRUE(now.ok());
  const ATime start = now.value() + 800;  // 100 ms ahead
  auto played = ac->PlaySamples(start, pattern);
  ASSERT_TRUE(played.ok());
  WaitUntil(start + pattern.size() + 1600);

  std::vector<uint8_t> heard;
  runner_->RunOnLoop([&] { heard = sink_->Segment(start, pattern.size()); });
  EXPECT_EQ(heard, pattern);
}

TEST_F(IntegrationTest, TwoClientsMixOnTheWire) {
  auto conn2_result = runner_->ConnectInProcess();
  ASSERT_TRUE(conn2_result.ok());
  auto conn2 = conn2_result.take();
  AC* ac1 = MakeAC();
  auto ac2_result = conn2->CreateAC(0, 0, ACAttributes{});
  ASSERT_TRUE(ac2_result.ok());
  AC* ac2 = ac2_result.value();

  const uint8_t a = MulawFromLinear16(6000);
  const uint8_t b = MulawFromLinear16(3000);
  auto now = conn_->GetTime(0);
  ASSERT_TRUE(now.ok());
  const ATime start = now.value() + 1600;
  ASSERT_TRUE(ac1->PlaySamples(start, std::vector<uint8_t>(800, a)).ok());
  ASSERT_TRUE(ac2->PlaySamples(start, std::vector<uint8_t>(800, b)).ok());
  WaitUntil(start + 800 + 1600);

  std::vector<uint8_t> heard;
  runner_->RunOnLoop([&] { heard = sink_->Segment(start + 100, 100); });
  ASSERT_EQ(heard.size(), 100u);
  EXPECT_NEAR(MulawToLinear16(heard[50]), 9000, 400);
}

TEST_F(IntegrationTest, RecordTheRecentPast) {
  // "By recording from the recent past, the application can begin
  // recording at the instant the button was hit" (Section 2.1).
  AC* ac = MakeAC();
  // Something must have marked recording before the audio happens, since
  // the record update is gated (the paper's documented startup caveat).
  std::vector<uint8_t> warmup(80);
  ASSERT_TRUE(ac->RecordSamples(0, warmup, /*block=*/false).ok());

  auto now = conn_->GetTime(0);
  ASSERT_TRUE(now.ok());
  std::vector<uint8_t> spoken(1600);
  for (size_t i = 0; i < spoken.size(); ++i) {
    spoken[i] = static_cast<uint8_t>(i % 199 + 17);
  }
  const ATime speak_at = now.value() + 400;
  runner_->RunOnLoop([&] { source_->PutAt(speak_at, spoken); });
  WaitUntil(speak_at + spoken.size() + 800);

  // Record from the past: the data is already in the server.
  std::vector<uint8_t> heard(spoken.size());
  auto rec = ac->RecordSamples(speak_at, heard, /*block=*/true);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().actual_bytes, spoken.size());
  EXPECT_EQ(heard, spoken);
}

TEST_F(IntegrationTest, BlockingRecordPacesTheClient) {
  AC* ac = MakeAC();
  auto now = conn_->GetTime(0);
  ASSERT_TRUE(now.ok());
  // Ask for 4000 samples ending ~500 ms in the future; the call must not
  // return before that much real time has elapsed.
  const uint64_t start_us = HostMicros();
  std::vector<uint8_t> buf(4000);
  auto rec = ac->RecordSamples(now.value(), buf, /*block=*/true);
  ASSERT_TRUE(rec.ok());
  const uint64_t elapsed_us = HostMicros() - start_us;
  EXPECT_GE(elapsed_us, 400000u);  // ~500 ms minus scheduling slack
  EXPECT_EQ(rec.value().actual_bytes, 4000u);
}

TEST_F(IntegrationTest, NonBlockingRecordReturnsWhatExists) {
  AC* ac = MakeAC();
  auto now = conn_->GetTime(0);
  ASSERT_TRUE(now.ok());
  std::vector<uint8_t> buf(8000);
  auto rec = ac->RecordSamples(now.value() - 800, buf, /*block=*/false);
  ASSERT_TRUE(rec.ok());
  EXPECT_LT(rec.value().actual_bytes, buf.size());
  EXPECT_GE(rec.value().actual_bytes, 780u);  // about the 800 past samples
}

TEST_F(IntegrationTest, FarFuturePlayBlocksUntilItFits) {
  AC* ac = MakeAC();
  auto now = conn_->GetTime(0);
  ASSERT_TRUE(now.ok());
  const size_t window = conn_->devices()[0].play_buffer_samples;
  // Schedule just past the buffer end; the server suspends us briefly.
  const uint64_t start_us = HostMicros();
  std::vector<uint8_t> data(800, MulawFromLinear16(2500));
  const ATime when = now.value() + static_cast<ATime>(window) + 400;
  auto played = ac->PlaySamples(when, data);
  ASSERT_TRUE(played.ok());
  const uint64_t elapsed_us = HostMicros() - start_us;
  // We were blocked for a noticeable time (the paper: "the only case in
  // which AFPlaySamples will not immediately return").
  EXPECT_GE(elapsed_us, 20000u);
}

TEST_F(IntegrationTest, SilenceIsNotTransported) {
  // A client playing two bursts with a long gap sends no data for the gap,
  // yet the output is silence there.
  AC* ac = MakeAC();
  auto now = conn_->GetTime(0);
  ASSERT_TRUE(now.ok());
  const ATime start = now.value() + 800;
  std::vector<uint8_t> burst(400, MulawFromLinear16(5000));
  ASSERT_TRUE(ac->PlaySamples(start, burst).ok());
  ASSERT_TRUE(ac->PlaySamples(start + 2400, burst).ok());
  WaitUntil(start + 2800 + 1600);
  std::vector<uint8_t> gap;
  runner_->RunOnLoop([&] { gap = sink_->Segment(start + 500, 1800); });
  ASSERT_EQ(gap.size(), 1800u);
  for (uint8_t v : gap) {
    ASSERT_EQ(v, kMulawSilence);
  }
}

TEST_F(IntegrationTest, BigEndianClientData) {
  ACAttributes attrs;
  attrs.encoding = AEncodeType::kLin16;
  attrs.channels = 1;
  attrs.big_endian_data = 1;  // we will hand the server big-endian samples
  AC* ac = MakeAC(kACEncodingType | kACChannels | kACEndian, attrs);

  std::vector<uint8_t> big_endian(800);
  for (size_t i = 0; i < big_endian.size(); i += 2) {
    const int16_t v = 7000;
    big_endian[i] = static_cast<uint8_t>(v >> 8);
    big_endian[i + 1] = static_cast<uint8_t>(v & 0xFF);
  }
  auto now = conn_->GetTime(0);
  ASSERT_TRUE(now.ok());
  const ATime start = now.value() + 800;
  ASSERT_TRUE(ac->PlaySamples(start, big_endian).ok());
  WaitUntil(start + 400 + 1600);
  std::vector<uint8_t> heard;
  runner_->RunOnLoop([&] { heard = sink_->Segment(start, 400); });
  ASSERT_EQ(heard.size(), 400u);
  EXPECT_NEAR(MulawToLinear16(heard[100]), 7000, 200);
}

TEST_F(IntegrationTest, ChunkedPlayOfLargeBuffer) {
  // 24000 bytes = 3 chunks at the 8 KB default; one reply total.
  AC* ac = MakeAC();
  std::vector<uint8_t> large(24000);
  for (size_t i = 0; i < large.size(); ++i) {
    large[i] = static_cast<uint8_t>((i * 31) % 250);
  }
  auto now = conn_->GetTime(0);
  ASSERT_TRUE(now.ok());
  const ATime start = now.value() + 800;
  auto played = ac->PlaySamples(start, large);
  ASSERT_TRUE(played.ok());
  WaitUntil(start + large.size() + 1600);
  std::vector<uint8_t> heard;
  runner_->RunOnLoop([&] { heard = sink_->Segment(start, large.size()); });
  EXPECT_EQ(heard, large);
}

TEST_F(IntegrationTest, LineServerDeviceThroughTheFullStack) {
  // The detached device behind the datagram protocol, driven by ordinary
  // protocol clients: device 1 of this server is a LineServer whose
  // "analog side" is a loopback wire.
  ServerRunner::Config config;
  config.with_codec = true;
  config.with_lineserver = true;
  auto ls_runner = ServerRunner::Start(config);
  ASSERT_NE(ls_runner, nullptr);
  auto wire = std::make_shared<LoopbackWire>(1 << 16, 1, kMulawSilence, 0);
  ls_runner->RunOnLoop([&] {
    ls_runner->lineserver()->firmware().SetSink(wire);
    ls_runner->lineserver()->firmware().SetSource(wire);
  });
  auto conn = ls_runner->ConnectInProcess().take();

  ASSERT_EQ(conn->devices().size(), 2u);
  const DeviceId ls = 1;
  EXPECT_EQ(conn->devices()[ls].type, DevType::kLineServer);

  auto ac_result = conn->CreateAC(ls, 0, ACAttributes{});
  ASSERT_TRUE(ac_result.ok());
  AC* ac = ac_result.value();

  std::vector<uint8_t> pattern(1200);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i % 200 + 30);
  }
  auto now = conn->GetTime(ls);
  ASSERT_TRUE(now.ok());
  const ATime start = now.value() + 1600;  // 200 ms out
  ASSERT_TRUE(ac->PlaySamples(start, pattern).ok());

  // Record the looped-back audio through the same protocol path.
  std::vector<uint8_t> heard(pattern.size());
  auto rec = ac->RecordSamples(start, heard, /*block=*/true);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(heard, pattern);

  // Device control crosses the datagram protocol too.
  conn->SetOutputGain(ls, 6);
  conn->Sync();
  ls_runner->RunOnLoop([&] {
    EXPECT_EQ(ls_runner->lineserver()->firmware().Register(LsCodecReg::kOutputGain), 6u);
  });
}

TEST_F(IntegrationTest, MonoHiFiViewsThroughTheFullStack) {
  ServerRunner::Config config;
  config.with_codec = false;
  config.with_hifi = true;
  auto hifi_runner = ServerRunner::Start(config);
  ASSERT_NE(hifi_runner, nullptr);
  auto sink = std::make_shared<CaptureSink>(64u << 20);
  hifi_runner->RunOnLoop([&] { hifi_runner->hifi()->sim().SetSink(sink); });
  auto conn = hifi_runner->ConnectInProcess().take();

  // Devices: 0 stereo, 1 left, 2 right.
  ASSERT_EQ(conn->devices().size(), 3u);
  EXPECT_EQ(conn->devices()[0].play_nchannels, 2u);
  EXPECT_EQ(conn->devices()[1].play_nchannels, 1u);

  ACAttributes attrs;
  attrs.encoding = AEncodeType::kLin16;
  attrs.channels = 1;
  auto left_ac = conn->CreateAC(1, kACEncodingType | kACChannels, attrs);
  ASSERT_TRUE(left_ac.ok());
  auto right_ac = conn->CreateAC(2, kACEncodingType | kACChannels, attrs);
  ASSERT_TRUE(right_ac.ok());

  std::vector<int16_t> ltone(4800, 1234);   // 100 ms at 48 kHz
  std::vector<int16_t> rtone(4800, -4321);
  auto now = conn->GetTime(0);
  ASSERT_TRUE(now.ok());
  const ATime start = now.value() + 9600;
  ASSERT_TRUE(left_ac.value()
                  ->PlaySamples(start, std::span<const uint8_t>(
                                           reinterpret_cast<const uint8_t*>(ltone.data()),
                                           ltone.size() * 2))
                  .ok());
  ASSERT_TRUE(right_ac.value()
                  ->PlaySamples(start, std::span<const uint8_t>(
                                           reinterpret_cast<const uint8_t*>(rtone.data()),
                                           rtone.size() * 2))
                  .ok());

  for (;;) {
    auto t = conn->GetTime(0);
    ASSERT_TRUE(t.ok());
    if (TimeAtOrAfter(t.value(), start + 4800 + 9600)) {
      break;
    }
    SleepMicros(20000);
  }
  std::vector<uint8_t> raw;
  hifi_runner->RunOnLoop([&] { raw = sink->Segment(start + 100, 100 * 4, 4); });
  ASSERT_EQ(raw.size(), 400u);
  const auto* frames = reinterpret_cast<const int16_t*>(raw.data());
  EXPECT_EQ(frames[0], 1234);   // left channel
  EXPECT_EQ(frames[1], -4321);  // right channel
}

TEST_F(IntegrationTest, TcpTransportWorksToo) {
  ServerRunner::Config config;
  config.with_codec = true;
  config.tcp_port = 17917;
  auto tcp_runner = ServerRunner::Start(config);
  ASSERT_NE(tcp_runner, nullptr);
  SleepMicros(50000);  // listener up
  // Server name "host:n" maps to TCP port kAudioFileBasePort + n.
  auto conn =
      AFAudioConn::Open("127.0.0.1:" + std::to_string(17917 - kAudioFileBasePort));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto t = conn.value()->GetTime(0);
  ASSERT_TRUE(t.ok());
}

TEST_F(IntegrationTest, UnixTransportWorksToo) {
  ServerRunner::Config config;
  config.with_codec = true;
  config.unix_path = "/tmp/.AF-unix/AF55";
  auto unix_runner = ServerRunner::Start(config);
  ASSERT_NE(unix_runner, nullptr);
  SleepMicros(50000);
  auto conn = AFAudioConn::Open(":55");
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto t = conn.value()->GetTime(0);
  ASSERT_TRUE(t.ok());
}

}  // namespace
}  // namespace af
