// Failover torture (PR 8): a dead server must not strand its clients.
//
// Covers the whole replication + reconnect stack: the op-log wire format,
// primary->backup shadow application and promotion, the client library's
// reconnect state machine end to end (kill the primary, heal onto the
// promoted backup, measure the audio gap), a kill-the-server sweep at
// every opcode boundary in the canonical request corpus, kills in every
// reconnect-machine state (factory failure, dead stream during setup,
// attempts exhausted), plus the two satellite regressions: the connect
// deadline must bound a connect against a full listener backlog (and
// resume EINTR instead of aborting), and astat must flag a server restart
// instead of printing an all-zero saturated diff.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "client/audio_context.h"
#include "clients/cores.h"
#include "clients/server_runner.h"
#include "common/trace.h"
#include "proto/oplog.h"
#include "proto/stats.h"
#include "server/replication.h"
#include "torture_util.h"
#include "transport/fault_stream.h"
#include "transport/stream.h"

namespace af {
namespace {

using torture::CanonicalRequest;

int64_t ElapsedMs(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Busy-wait helpers for the asynchronous replication reader thread; every
// wait is bounded so a regression fails fast instead of hanging.
template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms = 5000) {
  const auto start = std::chrono::steady_clock::now();
  while (!pred()) {
    if (ElapsedMs(start) > timeout_ms) {
      return false;
    }
    (void)::poll(nullptr, 0, 1);
  }
  return true;
}

size_t CounterSlot(const char* name) {
  for (size_t i = 0; i < kNumServerCounters; ++i) {
    if (std::strcmp(kServerCounterNames[i], name) == 0) {
      return i;
    }
  }
  ADD_FAILURE() << "no counter slot named " << name;
  return 0;
}

// Reconnect factory that lands the healed connection on `runner` via an
// adopted socketpair (the in-process stand-in for re-resolving the name).
AFAudioConn::ReconnectFactory AdoptInto(ServerRunner* runner) {
  return [runner]() -> Result<FdStream> {
    auto pair = CreateStreamPair();
    if (!pair.ok()) {
      return pair.status();
    }
    runner->server().AdoptClient(std::move(pair.value().second));
    return std::move(pair.value().first);
  };
}

ServerRunner::Config ManualConfig() {
  ServerRunner::Config config;
  config.with_codec = true;
  config.realtime = false;
  return config;
}

// ---------------------------------------------------------------------------
// Op-log wire format

TEST(OplogWireTest, HelloRoundTripsBothOrders) {
  for (const WireOrder order : {WireOrder::kLittle, WireOrder::kBig}) {
    WireWriter w(order);
    EncodeOplogHello(w);
    ASSERT_EQ(w.size(), kOplogHelloBytes);
    const auto hello = DecodeOplogHello(w.data());
    ASSERT_TRUE(hello.has_value());
    EXPECT_EQ(hello->order, order);
    EXPECT_EQ(hello->record_bytes, kOplogRecordBytes);
  }
}

TEST(OplogWireTest, BadMagicRejected) {
  WireWriter w;
  EncodeOplogHello(w);
  auto bytes = w.Take();
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(DecodeOplogHello(bytes).has_value());
  EXPECT_FALSE(DecodeOplogHello({bytes.data(), 4}).has_value());  // short
}

TEST(OplogWireTest, RecordRoundTripsBothOrders) {
  OplogRecord rec;
  rec.seq = 0x0102030405060708ull;
  rec.type = static_cast<uint16_t>(OplogType::kACChange);
  rec.client = 7;
  rec.device = 3;
  rec.ac = 0x2000001;
  rec.value_mask = kACPlayGain | kACChannels;
  rec.attrs.play_gain_db = -6;
  rec.attrs.record_gain_db = 12;
  rec.attrs.preempt = 1;
  rec.attrs.big_endian_data = 1;
  rec.attrs.encoding = AEncodeType::kLin16;
  rec.attrs.channels = 2;
  rec.value = 0xDEADBEEFCAFEF00Dull;
  for (const WireOrder order : {WireOrder::kLittle, WireOrder::kBig}) {
    WireWriter w(order);
    EncodeOplogRecord(w, rec);
    ASSERT_EQ(w.size(), kOplogRecordBytes);
    OplogRecord out;
    ASSERT_TRUE(DecodeOplogRecord(w.data(), order, kOplogRecordBytes, &out));
    EXPECT_EQ(out.seq, rec.seq);
    EXPECT_EQ(out.type, rec.type);
    EXPECT_EQ(out.client, rec.client);
    EXPECT_EQ(out.device, rec.device);
    EXPECT_EQ(out.ac, rec.ac);
    EXPECT_EQ(out.value_mask, rec.value_mask);
    EXPECT_EQ(out.attrs.play_gain_db, rec.attrs.play_gain_db);
    EXPECT_EQ(out.attrs.record_gain_db, rec.attrs.record_gain_db);
    EXPECT_EQ(out.attrs.preempt, rec.attrs.preempt);
    EXPECT_EQ(out.attrs.big_endian_data, rec.attrs.big_endian_data);
    EXPECT_EQ(out.attrs.encoding, rec.attrs.encoding);
    EXPECT_EQ(out.attrs.channels, rec.attrs.channels);
    EXPECT_EQ(out.value, rec.value);
  }
}

TEST(OplogWireTest, LargerRecordSizeSkipsUnknownTail) {
  // A future primary may append fields: its hello carries a larger
  // record_bytes and this build's decoder must skip the tail it does not
  // know, per the append-only evolution rule.
  OplogRecord rec;
  rec.seq = 42;
  rec.type = static_cast<uint16_t>(OplogType::kWatermark);
  rec.device = 1;
  rec.value = 48000;
  WireWriter w;
  EncodeOplogRecord(w, rec);
  for (int i = 0; i < 16; ++i) {
    w.U8(0xEE);  // the unknown future tail
  }
  OplogRecord out;
  ASSERT_TRUE(
      DecodeOplogRecord(w.data(), HostWireOrder(), kOplogRecordBytes + 16, &out));
  EXPECT_EQ(out.seq, rec.seq);
  EXPECT_EQ(out.type, rec.type);
  EXPECT_EQ(out.value, rec.value);
}

TEST(OplogWireTest, AckRoundTrips) {
  WireWriter w;
  EncodeOplogAck(w, 0x1122334455667788ull);
  ASSERT_EQ(w.size(), kOplogAckBytes);
  const auto seq = DecodeOplogAck(w.data(), HostWireOrder());
  ASSERT_TRUE(seq.has_value());
  EXPECT_EQ(*seq, 0x1122334455667788ull);
  EXPECT_FALSE(DecodeOplogAck({w.data().data(), 4}, HostWireOrder()).has_value());
}

// ---------------------------------------------------------------------------
// Primary -> backup: shadow application and promotion

TEST(ReplicationBackupTest, AppliesShadowAndPromotesOnLinkDeath) {
  auto backup = ServerRunner::Start(ManualConfig());
  ASSERT_NE(backup, nullptr);
  auto link = CreateStreamPair();
  ASSERT_TRUE(link.ok());
  backup->server().AttachReplicationBackup(std::move(link.value().second));
  ReplicationPrimary primary(std::move(link.value().first));
  ReplicationBackup* rb = backup->server().replication_backup();
  ASSERT_NE(rb, nullptr);

  const uint32_t dev = backup->codec_id() + 1;  // op-log device = id + 1
  OplogRecord rec;
  rec.type = static_cast<uint16_t>(OplogType::kClientConnect);
  rec.client = 7;
  primary.Emit(rec);
  rec = OplogRecord();
  rec.type = static_cast<uint16_t>(OplogType::kACCreate);
  rec.client = 7;
  rec.device = dev;
  rec.ac = 0x2000001;
  rec.value_mask = kACPlayGain;
  rec.attrs.play_gain_db = -6;
  primary.Emit(rec);
  rec = OplogRecord();
  rec.type = static_cast<uint16_t>(OplogType::kInputGain);
  rec.device = dev;
  rec.value = static_cast<uint64_t>(static_cast<int64_t>(-12));
  primary.Emit(rec);
  rec = OplogRecord();
  rec.type = static_cast<uint16_t>(OplogType::kEnableOutput);
  rec.device = dev;
  rec.value = 0x1;
  primary.Emit(rec);
  rec = OplogRecord();
  rec.type = static_cast<uint16_t>(OplogType::kWatermark);
  rec.device = dev;
  rec.value = 12345;
  primary.Emit(rec);
  EXPECT_EQ(primary.emitted(), 5u);

  ASSERT_TRUE(WaitFor([&] { return rb->applied() >= 5; }));
  EXPECT_EQ(rb->shadow_clients(), 1u);
  EXPECT_EQ(rb->shadow_acs(), 1u);
  ACAttributes shadow;
  ASSERT_TRUE(rb->ShadowACAttrs(0x2000001, &shadow));
  EXPECT_EQ(shadow.play_gain_db, -6);
  EXPECT_FALSE(rb->ShadowACAttrs(0x999, &shadow));

  // Acks flow backup -> primary; the primary drains them on Emit.
  ASSERT_TRUE(WaitFor([&] {
    OplogRecord ping;
    ping.type = static_cast<uint16_t>(OplogType::kClientConnect);
    ping.client = 8;
    primary.Emit(ping);
    return primary.acked() >= 5;
  }));

  // The link dies: the backup promotes, replays device settings onto its
  // own devices, and fast-forwards device time to the watermark.
  primary.DropLink();
  ASSERT_TRUE(rb->WaitPromoted(5000));
  EXPECT_TRUE(backup->server().promoted());
  EXPECT_EQ(backup->server().promoted_watermark(backup->codec_id()), 12345u);
  int input_gain = 0;
  uint32_t output_mask = 0;
  ATime dev_time = 0;
  backup->RunOnLoop([&] {
    input_gain = backup->codec()->input_gain_db();
    output_mask = backup->codec()->output_enable_mask();
    dev_time = backup->codec()->GetTime();
  });
  EXPECT_EQ(input_gain, -12);
  EXPECT_EQ(output_mask, 0x1u);
  EXPECT_TRUE(TimeAtOrAfter(dev_time, 12345))
      << "device time " << dev_time << " behind the promoted watermark";
}

// Regression: every reply that hands a device time to a client must push
// the replicated watermark, not just PlaySamples — a record-only or
// GetTime-only session would otherwise see the promoted backup's clock
// behind times it already observed.
TEST(ReplicationBackupTest, RecordAndGetTimeRepliesPushWatermark) {
  auto primary = ServerRunner::Start(ManualConfig());
  auto backup = ServerRunner::Start(ManualConfig());
  ASSERT_NE(primary, nullptr);
  ASSERT_NE(backup, nullptr);
  auto link = CreateStreamPair();
  ASSERT_TRUE(link.ok());
  primary->server().AttachReplicationPrimary(std::move(link.value().first));
  backup->server().AttachReplicationBackup(std::move(link.value().second));
  ReplicationBackup* rb = backup->server().replication_backup();
  ASSERT_NE(rb, nullptr);

  auto conn_result = primary->ConnectInProcess();
  ASSERT_TRUE(conn_result.ok());
  auto conn = conn_result.take();
  conn->SetErrorHandler([](AFAudioConn&, const ErrorPacket&) {});
  conn->SetIOErrorHandler([](AFAudioConn&) {});

  // A record-only session: PlaySamples never runs, yet both replies below
  // hand out device times that must land in the backup's shadow.
  ACAttributes attrs;
  attrs.channels = 1;
  auto ac = conn->CreateAC(0, kACChannels, attrs);
  ASSERT_TRUE(ac.ok());
  primary->manual_clock()->Advance(3000);
  std::vector<uint8_t> buf(256);
  auto rec = ac.value()->RecordSamples(0, buf, /*block=*/false);
  ASSERT_TRUE(rec.ok());
  primary->manual_clock()->Advance(500);
  auto t = conn->GetTime(0);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(TimeAfter(t.value(), rec.value().time));

  const uint64_t emitted = primary->server().replication_primary()->emitted();
  ASSERT_GT(emitted, 0u);
  ASSERT_TRUE(WaitFor([&] { return rb->applied() >= emitted; }));

  primary.reset();
  ASSERT_TRUE(rb->WaitPromoted(5000));
  const ATime promoted = backup->server().promoted_watermark(0);
  EXPECT_TRUE(TimeAtOrAfter(promoted, rec.value().time))
      << "promoted watermark " << promoted << " behind the RecordSamples reply "
      << rec.value().time;
  EXPECT_TRUE(TimeAtOrAfter(promoted, t.value()))
      << "promoted watermark " << promoted << " behind the GetTime reply "
      << t.value();
}

TEST(ReplicationPrimaryTest, AckWindowOverflowDropsLinkNotServer) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  ReplicationPrimary primary(std::move(pair.value().first));
  FdStream dead_backup = std::move(pair.value().second);  // never reads, never acks

  OplogRecord rec;
  rec.type = static_cast<uint16_t>(OplogType::kClientConnect);
  rec.client = 1;
  for (uint64_t i = 0; i < ReplicationPrimary::kAckWindow + 8; ++i) {
    primary.Emit(rec);
  }
  EXPECT_FALSE(primary.link_up());
  EXPECT_GE(primary.overflows(), 1u);
  EXPECT_EQ(primary.emitted(), ReplicationPrimary::kAckWindow);
  primary.Emit(rec);  // further emits are cheap no-ops, never a hazard
  EXPECT_EQ(primary.emitted(), ReplicationPrimary::kAckWindow);
}

// ---------------------------------------------------------------------------
// ResyncTime (opcode 40) basics

TEST(ResyncTimeTest, ReportsServerTimeAndPromotionState) {
  auto runner = ServerRunner::Start(ManualConfig());
  ASSERT_NE(runner, nullptr);
  auto conn_result = runner->ConnectInProcess();
  ASSERT_TRUE(conn_result.ok());
  auto conn = conn_result.take();

  auto t0 = conn->GetTime(0);
  ASSERT_TRUE(t0.ok());
  runner->manual_clock()->Advance(500);
  auto reply = conn->ResyncTime(0, t0.value());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().promoted, 0u);  // this server never failed over
  EXPECT_TRUE(TimeAtOrAfter(reply.value().server_time, t0.value()));

  // A bad device errors instead of inventing a clock.
  auto bad = conn->ResyncTime(99, 0);
  EXPECT_FALSE(bad.ok());

  auto stats = conn->GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().counters[CounterSlot("resyncs")], 1u);
  EXPECT_EQ(stats.value().counters[CounterSlot("failovers_promoted")], 0u);
}

TEST(ResyncTimeTest, EmitsResyncTraceInstantWithMeasuredGap) {
  auto runner = ServerRunner::Start(ManualConfig());
  ASSERT_NE(runner, nullptr);
  auto conn_result = runner->ConnectInProcess();
  ASSERT_TRUE(conn_result.ok());
  auto conn = conn_result.take();

  EXPECT_STREQ(TraceKindName(TraceKind::kResync), "resync");  // atrace label
  auto on = conn->GetTrace(kTraceFlagEnable);
  ASSERT_TRUE(on.ok());
  runner->manual_clock()->Advance(500);
  // Client watermark 1, server clock ~500: the trace instant carries the
  // measured gap.
  auto reply = conn->ResyncTime(0, 1);
  ASSERT_TRUE(reply.ok());
  auto drained = conn->GetTrace(kTraceFlagDisable);
  ASSERT_TRUE(drained.ok());
  bool found = false;
  for (const TraceEvent& ev : drained.value().events) {
    if (ev.kind == static_cast<uint8_t>(TraceKind::kResync)) {
      found = true;
      EXPECT_GT(ev.value, 0u) << "resync instant should carry the gap";
    }
  }
  EXPECT_TRUE(found) << "no resync instant in the drained trace";
}

// ---------------------------------------------------------------------------
// End to end: kill the primary, heal onto the promoted backup

TEST(FailoverEndToEndTest, ClientRidesOverPrimaryDeathWithBoundedGap) {
  auto primary = ServerRunner::Start(ManualConfig());
  auto backup = ServerRunner::Start(ManualConfig());
  ASSERT_NE(primary, nullptr);
  ASSERT_NE(backup, nullptr);
  auto link = CreateStreamPair();
  ASSERT_TRUE(link.ok());
  // Both roles attach before any client connects (the attach is the
  // happens-before for the shard threads' view of the primary link).
  primary->server().AttachReplicationPrimary(std::move(link.value().first));
  backup->server().AttachReplicationBackup(std::move(link.value().second));
  ReplicationBackup* rb = backup->server().replication_backup();
  ASSERT_NE(rb, nullptr);

  auto conn_result = primary->ConnectInProcess();
  ASSERT_TRUE(conn_result.ok());
  auto conn = conn_result.take();
  conn->SetErrorHandler([](AFAudioConn&, const ErrorPacket&) {});
  bool io_error = false;
  conn->SetIOErrorHandler([&](AFAudioConn&) { io_error = true; });
  AFAudioConn::ReconnectPolicy policy;
  policy.enabled = true;
  policy.backoff_ms = 1;
  conn->SetReconnectPolicy(policy);
  conn->SetReconnectFactory(AdoptInto(backup.get()));

  // Build up session state the failover must carry over.
  conn->SetInputGain(0, -6);
  conn->SetOutputGain(0, -9);
  conn->SelectEvents(0, 0x1);
  ACAttributes attrs;
  attrs.play_gain_db = -3;
  auto ac_result = conn->CreateAC(0, kACPlayGain, attrs);
  ASSERT_TRUE(ac_result.ok());
  AC* ac = ac_result.value();
  const ACId old_id = ac->id();
  auto t0 = conn->GetTime(0);
  ASSERT_TRUE(t0.ok());
  const std::vector<uint8_t> pattern(1600, 0x55);
  auto played = ac->PlaySamples(t0.value(), pattern);
  ASSERT_TRUE(played.ok());
  conn->Sync();

  // Every record the primary emitted must land in the backup's shadow.
  const uint64_t emitted = primary->server().replication_primary()->emitted();
  ASSERT_GT(emitted, 0u);
  ASSERT_TRUE(WaitFor([&] { return rb->applied() >= emitted; }));

  // Replicated attributes are bit-equal to the client's mirror.
  ACAttributes shadow;
  ASSERT_TRUE(rb->ShadowACAttrs(old_id, &shadow));
  EXPECT_EQ(shadow.play_gain_db, ac->attrs().play_gain_db);
  EXPECT_EQ(shadow.record_gain_db, ac->attrs().record_gain_db);
  EXPECT_EQ(shadow.preempt, ac->attrs().preempt);
  EXPECT_EQ(shadow.big_endian_data, ac->attrs().big_endian_data);
  EXPECT_EQ(shadow.encoding, ac->attrs().encoding);
  EXPECT_EQ(shadow.channels, ac->attrs().channels);

  // The primary dies. The backup promotes; its clock then runs 800 samples
  // past the watermark the dead primary last handed out, so the healed
  // client must measure a gap of about that much.
  const ATime watermark = played.value();
  primary.reset();
  ASSERT_TRUE(rb->WaitPromoted(5000));
  EXPECT_TRUE(backup->server().promoted());
  EXPECT_EQ(backup->server().promoted_watermark(0), watermark);
  backup->manual_clock()->Advance(800);

  // First request after the death heals the connection transparently.
  auto t1 = conn->GetTime(0);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(conn->reconnects(), 1u);
  EXPECT_TRUE(conn->promoted_peer());
  EXPECT_FALSE(io_error);
  EXPECT_FALSE(conn->broken());
  const uint64_t gap = conn->resync_gap_samples();
  EXPECT_GE(gap, 1u) << "outage cost no measurable audio?";
  EXPECT_LE(gap, 4000u) << "gap not bounded";
  // scripts/ci.sh greps this line in the kill-primary smoke.
  std::printf("resync_gap_samples=%" PRIu64 " bound=4000\n", gap);

  // The replayed session is live on the backup: device settings stuck and
  // the surviving AC object plays on its new id.
  int input_gain = 0;
  int output_gain = 0;
  backup->RunOnLoop([&] {
    input_gain = backup->codec()->input_gain_db();
    output_gain = backup->codec()->output_gain_db();
  });
  EXPECT_EQ(input_gain, -6);
  EXPECT_EQ(output_gain, -9);
  // The AC was re-created under the new connection's id base (which may
  // numerically equal the old one when the backup assigns the same client
  // number); what matters is that the object still plays.
  auto replayed = ac->PlaySamples(t1.value(), pattern);
  EXPECT_TRUE(replayed.ok());

  auto stats = conn->GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().counters[CounterSlot("resyncs")], 1u);
  EXPECT_EQ(stats.value().counters[CounterSlot("failovers_promoted")], 1u);
}

// ---------------------------------------------------------------------------
// Kill-the-server sweep: every opcode boundary, plus mid-request

class FailoverTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerRunner::Config config = ManualConfig();
    config.with_phone = true;  // so telephony opcodes hit a real device
    runner_ = ServerRunner::Start(config);
    ASSERT_NE(runner_, nullptr);
    auto conn = runner_->ConnectInProcess();
    ASSERT_TRUE(conn.ok());
    bystander_ = conn.take();
  }

  // A reconnect-enabled client whose transport dies at `cut_offset` bytes
  // written (the setup handshake counts toward the offset).
  std::unique_ptr<AFAudioConn> NewVictim(uint64_t cut_offset) {
    auto faults = std::make_shared<FaultSchedule>();
    faults->CutWriteAt(cut_offset);
    auto conn = runner_->ConnectInProcess(faults);
    if (!conn.ok()) {
      return nullptr;
    }
    auto victim = conn.take();
    victim->SetErrorHandler([](AFAudioConn&, const ErrorPacket&) {});
    victim->SetIOErrorHandler([](AFAudioConn&) {});
    AFAudioConn::ReconnectPolicy policy;
    policy.enabled = true;
    policy.backoff_ms = 1;
    victim->SetReconnectPolicy(policy);
    victim->SetReconnectFactory(AdoptInto(runner_.get()));
    return victim;
  }

  std::unique_ptr<ServerRunner> runner_;
  std::unique_ptr<AFAudioConn> bystander_;
};

TEST_F(FailoverTortureTest, KillAtEveryOpcodeBoundary) {
  SetupRequest setup;
  setup.order = HostWireOrder();
  const size_t setup_bytes = setup.Encode().size();
  for (uint8_t opi = kMinOpcode; opi <= kMaxOpcode; ++opi) {
    const Opcode op = static_cast<Opcode>(opi);
    const auto req = CanonicalRequest(op);
    // Two kill points per opcode: exactly at the request boundary (the
    // request went out whole, the connection died before the next one) and
    // mid-request (the request itself died half-sent).
    for (const size_t cut : {req.size(), req.size() / 2}) {
      auto victim = NewVictim(setup_bytes + cut);
      ASSERT_NE(victim, nullptr) << "opcode " << int(opi);
      victim->out_for_test().Bytes(req.data(), req.size());
      victim->Flush();
      // The next round trip rides the reconnect machinery: the write hits
      // the cut, the machine heals onto a fresh connection, and the awaited
      // request is reissued there.
      victim->Sync();
      EXPECT_FALSE(victim->broken()) << "opcode " << int(opi) << " cut " << cut;
      EXPECT_EQ(victim->reconnects(), 1u) << "opcode " << int(opi) << " cut " << cut;
      auto t = victim->GetTime(0);
      EXPECT_TRUE(t.ok()) << "opcode " << int(opi) << " cut " << cut;
    }
  }
  auto t = bystander_->GetTime(0);  // bystanders never caught any shrapnel
  EXPECT_TRUE(t.ok());
}

TEST_F(FailoverTortureTest, SessionStateSurvivesKillInsideMutationBatch) {
  // Like the boundary sweep, but through the real client API with real
  // session state: the queued mutation batch (gains, masks, CreateAC, the
  // sync) dies at various byte offsets into its flush, and the replayed
  // session must come out whole on the healed connection. The batch is
  // well over 64 bytes (three 12-byte requests plus a CreateAC), so every
  // cut below lands inside it.
  SetupRequest setup;
  setup.order = HostWireOrder();
  const size_t setup_bytes = setup.Encode().size();
  ACAttributes attrs;
  attrs.play_gain_db = -3;

  for (const size_t extra : {size_t{1}, size_t{9}, size_t{33}, size_t{63}}) {
    auto victim = NewVictim(setup_bytes + extra);
    ASSERT_NE(victim, nullptr);
    victim->SetInputGain(0, -6);
    victim->EnableOutput(0, 0x1);
    victim->DisableOutput(0, ~0x1u);
    auto ac = victim->CreateAC(0, kACPlayGain, attrs);  // queued, not awaited
    ASSERT_TRUE(ac.ok());
    victim->Sync();  // the flush inside hits the cut; the machine heals
    ASSERT_FALSE(victim->broken()) << "cut at setup+" << extra;
    EXPECT_EQ(victim->reconnects(), 1u) << "cut at setup+" << extra;
    auto gain = victim->QueryInputGain(0);
    ASSERT_TRUE(gain.ok()) << "cut at setup+" << extra;
    EXPECT_EQ(gain.value().gain_db, -6) << "cut at setup+" << extra;
    EXPECT_EQ(ac.value()->attrs().play_gain_db, -3);
  }
  auto t = bystander_->GetTime(0);
  EXPECT_TRUE(t.ok());
}

// ---------------------------------------------------------------------------
// Kills in every reconnect-machine state

TEST(ReconnectStateTest, RetriesFactoryFailuresWithinAttemptBudget) {
  auto doomed = ServerRunner::Start(ManualConfig());
  auto haven = ServerRunner::Start(ManualConfig());
  ASSERT_NE(doomed, nullptr);
  ASSERT_NE(haven, nullptr);
  auto conn_result = doomed->ConnectInProcess();
  ASSERT_TRUE(conn_result.ok());
  auto conn = conn_result.take();
  bool io_error = false;
  conn->SetIOErrorHandler([&](AFAudioConn&) { io_error = true; });
  AFAudioConn::ReconnectPolicy policy;
  policy.enabled = true;
  policy.max_attempts = 3;
  policy.backoff_ms = 1;
  conn->SetReconnectPolicy(policy);
  int calls = 0;
  auto adopt = AdoptInto(haven.get());
  conn->SetReconnectFactory([&]() -> Result<FdStream> {
    ++calls;
    if (calls <= 2) {
      return Status(AfError::kConnectionLost, "injected factory failure");
    }
    return adopt();
  });

  doomed.reset();
  auto t = conn->GetTime(0);
  EXPECT_TRUE(t.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(conn->reconnects(), 1u);
  EXPECT_FALSE(io_error);
}

TEST(ReconnectStateTest, DeadStreamDuringSetupRetriesNextAttempt) {
  auto doomed = ServerRunner::Start(ManualConfig());
  auto haven = ServerRunner::Start(ManualConfig());
  ASSERT_NE(doomed, nullptr);
  ASSERT_NE(haven, nullptr);
  auto conn_result = doomed->ConnectInProcess();
  ASSERT_TRUE(conn_result.ok());
  auto conn = conn_result.take();
  bool io_error = false;
  conn->SetIOErrorHandler([&](AFAudioConn&) { io_error = true; });
  AFAudioConn::ReconnectPolicy policy;
  policy.enabled = true;
  policy.backoff_ms = 1;
  conn->SetReconnectPolicy(policy);
  int calls = 0;
  auto adopt = AdoptInto(haven.get());
  conn->SetReconnectFactory([&]() -> Result<FdStream> {
    ++calls;
    if (calls == 1) {
      // A stream whose peer is already gone: the setup handshake on it
      // must fail and roll the machine into the next attempt.
      auto pair = CreateStreamPair();
      if (!pair.ok()) {
        return pair.status();
      }
      return std::move(pair.value().first);  // second half closes here
    }
    return adopt();
  });

  doomed.reset();
  auto t = conn->GetTime(0);
  EXPECT_TRUE(t.ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(conn->reconnects(), 1u);
  EXPECT_FALSE(io_error);
}

TEST(ReconnectStateTest, ExhaustedAttemptsFallBackToIOErrorHandler) {
  auto doomed = ServerRunner::Start(ManualConfig());
  ASSERT_NE(doomed, nullptr);
  auto conn_result = doomed->ConnectInProcess();
  ASSERT_TRUE(conn_result.ok());
  auto conn = conn_result.take();
  bool io_error = false;
  conn->SetIOErrorHandler([&](AFAudioConn&) { io_error = true; });
  AFAudioConn::ReconnectPolicy policy;
  policy.enabled = true;
  policy.max_attempts = 2;
  policy.backoff_ms = 1;
  conn->SetReconnectPolicy(policy);
  int calls = 0;
  conn->SetReconnectFactory([&]() -> Result<FdStream> {
    ++calls;
    return Status(AfError::kConnectionLost, "injected: no server anywhere");
  });

  doomed.reset();
  auto t = conn->GetTime(0);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(conn->broken());
  EXPECT_TRUE(io_error);
  EXPECT_EQ(conn->reconnects(), 0u);
}

// ---------------------------------------------------------------------------
// Satellite regression: connect deadline against a full listener backlog

// A listening UNIX socket that never accepts, with its backlog stuffed by
// raw nonblocking connects so further connects cannot complete.
class FullBacklogListener {
 public:
  bool Open() {
    path_ = "/tmp/af_failover_dl_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++) + ".sock";
    ::unlink(path_.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return false;
    }
    struct sockaddr_un sun = {};
    sun.sun_family = AF_UNIX;
    std::strncpy(sun.sun_path, path_.c_str(), sizeof(sun.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&sun), sizeof(sun)) != 0 ||
        ::listen(listen_fd_, 0) != 0) {
      return false;
    }
    // Stuff the backlog until the kernel turns connects away.
    for (int i = 0; i < 64; ++i) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) {
        return false;
      }
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
      const int rc =
          ::connect(fd, reinterpret_cast<struct sockaddr*>(&sun), sizeof(sun));
      fillers_.push_back(fd);
      if (rc != 0 && errno == EAGAIN) {
        return true;  // the queue is full; the next connect cannot finish
      }
    }
    return false;
  }

  ~FullBacklogListener() {
    for (const int fd : fillers_) {
      ::close(fd);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
    }
    if (!path_.empty()) {
      ::unlink(path_.c_str());
    }
  }

  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  int listen_fd_ = -1;
  std::vector<int> fillers_;
  std::string path_;
};

TEST(ConnectDeadlineTest, DeadlineBoundsConnectAgainstFullBacklog) {
  FullBacklogListener listener;
  ASSERT_TRUE(listener.Open()) << "could not fill the listen backlog";
  const auto start = std::chrono::steady_clock::now();
  auto r = ConnectUnix(listener.path(), 250);
  const int64_t ms = ElapsedMs(start);
  EXPECT_FALSE(r.ok()) << "connected through a full backlog?";
  EXPECT_GE(ms, 200) << "gave up before the deadline";
  EXPECT_LT(ms, 5000) << "deadline not honored (the pre-fix behavior hangs here)";
}

TEST(ConnectDeadlineTest, DeadlineStillConnectsWhenBacklogHasRoom) {
  // A queued UNIX connect completes without an accept, so a listener with
  // room proves the deadline path still connects.
  const std::string path =
      "/tmp/af_failover_ok_" + std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  struct sockaddr_un sun = {};
  sun.sun_family = AF_UNIX;
  std::strncpy(sun.sun_path, path.c_str(), sizeof(sun.sun_path) - 1);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<struct sockaddr*>(&sun), sizeof(sun)), 0);
  ASSERT_EQ(::listen(lfd, 8), 0);
  auto with_deadline = ConnectUnix(path, 250);
  EXPECT_TRUE(with_deadline.ok());
  auto without_deadline = ConnectUnix(path);  // the historical default
  EXPECT_TRUE(without_deadline.ok());
  ::close(lfd);
  ::unlink(path.c_str());
}

void NoopSignalHandler(int) {}

TEST(ConnectDeadlineTest, EintrResumesWithRemainingTime) {
  // The satellite bug: EINTR used to abort the connect. A repeating timer
  // peppers the wait with signals; the connect must still run the full
  // deadline and report timeout, not an early EINTR failure.
  FullBacklogListener listener;
  ASSERT_TRUE(listener.Open()) << "could not fill the listen backlog";
  struct sigaction sa = {};
  sa.sa_handler = NoopSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old_sa;
  ASSERT_EQ(::sigaction(SIGALRM, &sa, &old_sa), 0);
  struct itimerval timer = {};
  timer.it_interval.tv_usec = 30000;  // 30 ms, repeating
  timer.it_value.tv_usec = 30000;
  ASSERT_EQ(::setitimer(ITIMER_REAL, &timer, nullptr), 0);

  const auto start = std::chrono::steady_clock::now();
  auto r = ConnectUnix(listener.path(), 300);
  const int64_t ms = ElapsedMs(start);

  struct itimerval off = {};
  ::setitimer(ITIMER_REAL, &off, nullptr);
  ::sigaction(SIGALRM, &old_sa, nullptr);

  EXPECT_FALSE(r.ok());
  EXPECT_GE(ms, 250) << "EINTR aborted the wait early (the satellite bug)";
  EXPECT_LT(ms, 5000);
}

// ---------------------------------------------------------------------------
// Satellite regression: astat --watch across a server restart

TEST(AstatRestartTest, WatchDetectsRestartInsteadOfZeroDiff) {
  auto first = ServerRunner::Start(ManualConfig());
  auto second = ServerRunner::Start(ManualConfig());
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  auto conn_result = first->ConnectInProcess();
  ASSERT_TRUE(conn_result.ok());
  auto conn = conn_result.take();
  AFAudioConn::ReconnectPolicy policy;
  policy.enabled = true;
  policy.backoff_ms = 1;
  conn->SetReconnectPolicy(policy);
  conn->SetReconnectFactory(AdoptInto(second.get()));

  // Pump the first server's counters well past anything the fresh second
  // server could have, then snapshot both sides of the "restart".
  for (int i = 0; i < 25; ++i) {
    conn->Sync();
  }
  auto prev = conn->GetServerStats();
  ASSERT_TRUE(prev.ok());
  first.reset();  // the "restart": the same name now serves a new process
  auto cur = conn->GetServerStats();
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(conn->reconnects(), 1u);

  const size_t req_slot = CounterSlot("requests_dispatched");
  ASSERT_GT(prev.value().counters[req_slot], cur.value().counters[req_slot]);

  // The regression: the saturating diff silently reports an all-zero
  // interval. Detection must flag the restart instead.
  const ServerStatsWire diff = DiffServerStats(prev.value(), cur.value());
  EXPECT_EQ(diff.counters[req_slot], 0u);
  EXPECT_TRUE(ServerStatsRegressed(prev.value(), cur.value()));

  // The annotated report, both renderings.
  const std::string table =
      FormatServerStats(cur.value(), /*json=*/false, /*shards=*/false, /*restarted=*/true);
  EXPECT_NE(table.find("server restarted"), std::string::npos);
  const std::string json =
      FormatServerStats(cur.value(), /*json=*/true, /*shards=*/false, /*restarted=*/true);
  EXPECT_NE(json.find("\"server_restarted\":true"), std::string::npos);

  // An uneventful watch interval reports no restart.
  AstatOptions options;
  options.json = true;
  options.watch_seconds = 0.01;
  options.watch_count = 1;
  std::string report;
  options.on_report = [&](const std::string& r) { report = r; };
  auto watch = RunAstat(*conn, options);
  ASSERT_TRUE(watch.ok());
  EXPECT_NE(report.find("\"server_restarted\":false"), std::string::npos);
}

TEST(AstatRestartTest, GaugeSlotsNeverFlagRestart) {
  ServerStatsWire prev;
  prev.counters.assign(kNumServerCounters, 10);
  ServerStatsWire cur = prev;
  // Gauges legitimately move both ways: dropping one is not a restart.
  cur.counters[CounterSlot("watched_fds")] = 0;
  cur.counters[CounterSlot("mailbox_depth_hw")] = 0;
  cur.counters[CounterSlot("oplog_acked")] = 0;
  cur.counters[CounterSlot("failovers_promoted")] = 0;
  EXPECT_FALSE(ServerStatsRegressed(prev, cur));
  // A monotonic counter going backwards is.
  cur.counters[CounterSlot("requests_dispatched")] = 9;
  EXPECT_TRUE(ServerStatsRegressed(prev, cur));
  // Mismatched lengths (old vs new server) compare only the overlap.
  cur.counters.resize(5);
  cur.counters[CounterSlot("requests_dispatched")] = 10;
  EXPECT_FALSE(ServerStatsRegressed(prev, cur));
}

}  // namespace
}  // namespace af
