// End-to-end causal tracing (PR 9): correlation IDs minted by the client
// survive every hostile path the server has — cross-shard borrows, chunked
// reads that park a half-arrived request, reconnect replays, mailbox spill
// storms — and the atrace --merge pipeline joins the two rings into one
// timeline whose per-request latency budget telescopes exactly.
//
// The file also pins the allocation-free contract of the generation-gated
// ring (a global operator-new hook counts allocations in the armed region)
// and round-trips a flight-recorder dump through the post-mortem loader.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <new>
#include <set>
#include <vector>

#include "client/audio_context.h"
#include "client/connection.h"
#include "clients/cores.h"
#include "clients/server_runner.h"
#include "common/flight_recorder.h"
#include "common/trace.h"
#include "proto/opcodes.h"
#include "proto/setup.h"
#include "proto/trace_wire.h"
#include "server/shard.h"
#include "transport/fault_stream.h"
#include "transport/stream.h"

// --- allocation counting hook (same shape as conversion_golden_test) --------

namespace {
volatile size_t g_alloc_count = 0;
volatile bool g_alloc_armed = false;
}  // namespace

void* operator new(std::size_t n) {
  if (g_alloc_armed) {
    g_alloc_count = g_alloc_count + 1;
  }
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  if (g_alloc_armed) {
    g_alloc_count = g_alloc_count + 1;
  }
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace af {
namespace {

TraceKind KindOf(const TraceEvent& ev) { return static_cast<TraceKind>(ev.kind); }

// Correlation IDs of every client-side enqueue for the given opcode.
std::vector<uint64_t> EnqueueCorrs(const std::vector<TraceEvent>& events, Opcode op) {
  std::vector<uint64_t> corrs;
  for (const TraceEvent& ev : events) {
    if (KindOf(ev) == TraceKind::kClientEnqueue &&
        ev.arg == static_cast<uint8_t>(op) && ev.corr != 0) {
      corrs.push_back(ev.corr);
    }
  }
  return corrs;
}

bool HasKindWithCorr(const std::vector<TraceEvent>& events, TraceKind kind,
                     uint64_t corr) {
  for (const TraceEvent& ev : events) {
    if (KindOf(ev) == kind && ev.corr == corr) {
      return true;
    }
  }
  return false;
}

class CausalShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerRunner::Config config;
    config.realtime = false;
    config.server.num_shards = 4;
    runner_ = ServerRunner::Start(std::move(config));
    ASSERT_NE(runner_, nullptr);
    ASSERT_EQ(runner_->server().num_shards(), 4u);
  }

  std::unique_ptr<AFAudioConn> ConnectOnShard(
      uint32_t shard, std::shared_ptr<FaultSchedule> server_faults = nullptr) {
    auto pair = CreateStreamPair();
    if (!pair.ok()) {
      return nullptr;
    }
    auto& [client_end, server_end] = pair.value();
    runner_->server().AdoptClientOnShard(std::move(server_end),
                                         std::move(server_faults), {}, shard);
    auto conn = AFAudioConn::FromStream(std::move(client_end), nullptr,
                                        "(in-process)");
    return conn.ok() ? conn.take() : nullptr;
  }

  std::unique_ptr<ServerRunner> runner_;
};

// The tentpole chain: a play queued on shard 2 against the shard-0 CODEC
// must leave one correlation ID on every link — client enqueue, home-shard
// dispatch span, mailbox hop, owner-shard remote-exec span, and the mix
// write into the device buffer.
TEST_F(CausalShardTest, CrossShardPlayChainSharesOneCorrelationId) {
  auto conn = ConnectOnShard(2);
  ASSERT_NE(conn, nullptr);
  conn->SetClientTracing(true);
  ASSERT_TRUE(conn->GetTrace(kTraceFlagEnable).ok());

  const DeviceId dev = runner_->codec_id();
  auto now = conn->GetTime(dev);
  ASSERT_TRUE(now.ok());
  auto ac = conn->CreateAC(dev, 0, ACAttributes{});
  ASSERT_TRUE(ac.ok());
  std::vector<uint8_t> tone(160, 0xFF);
  ASSERT_TRUE(ac.value()->PlaySamples(now.value() + 400, tone).ok());

  auto window = conn->GetTrace(kTraceFlagDisable);
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  std::vector<TraceEvent> client_events;
  conn->client_trace().Drain(&client_events);

  const auto play_corrs = EnqueueCorrs(client_events, Opcode::kPlaySamples);
  ASSERT_FALSE(play_corrs.empty()) << "client ring recorded no play enqueue";
  const uint64_t corr = play_corrs.back();

  const std::vector<TraceEvent>& server_events = window.value().events;
  EXPECT_TRUE(HasKindWithCorr(server_events, TraceKind::kRequest, corr))
      << "home-shard dispatch span lost the correlation ID";
  EXPECT_TRUE(HasKindWithCorr(server_events, TraceKind::kMailboxHop, corr))
      << "mailbox hop lost the correlation ID";
  EXPECT_TRUE(HasKindWithCorr(server_events, TraceKind::kRemoteExec, corr))
      << "owner-shard execution span lost the correlation ID";
  EXPECT_TRUE(HasKindWithCorr(server_events, TraceKind::kMixWrite, corr))
      << "device mix write lost the correlation ID";

  // The chain's server spans name the shards they ran on: the kRequest
  // span on the home shard, the remote exec on the device owner.
  for (const TraceEvent& ev : server_events) {
    if (ev.corr != corr) {
      continue;
    }
    if (KindOf(ev) == TraceKind::kRequest) {
      EXPECT_EQ(ev.shard, 2u);
    }
    if (KindOf(ev) == TraceKind::kRemoteExec || KindOf(ev) == TraceKind::kMixWrite) {
      EXPECT_EQ(ev.shard, 0u);
    }
  }
}

// A request whose bytes dribble in three at a time is parked and resumed
// across many readable events; the aux trailer (the last 8 bytes) only
// parses once the request is whole, and the dispatch span must still carry
// the client's ID.
TEST(CausalTruncationTest, TruncatedRequestsKeepTheirCorrelationIds) {
  ServerRunner::Config config;
  config.realtime = false;
  auto runner = ServerRunner::Start(std::move(config));
  ASSERT_NE(runner, nullptr);

  auto faults = std::make_shared<FaultSchedule>();
  faults->SetMaxReadChunk(3);
  auto conn_result = runner->ConnectInProcess(nullptr, faults);
  ASSERT_TRUE(conn_result.ok());
  auto conn = conn_result.take();
  conn->SetClientTracing(true);
  ASSERT_TRUE(conn->GetTrace(kTraceFlagEnable).ok());

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(conn->GetTime(0).ok());
  }

  auto window = conn->GetTrace(kTraceFlagDisable);
  ASSERT_TRUE(window.ok());
  std::vector<TraceEvent> client_events;
  conn->client_trace().Drain(&client_events);

  const auto corrs = EnqueueCorrs(client_events, Opcode::kGetTime);
  ASSERT_EQ(corrs.size(), 5u);
  for (const uint64_t corr : corrs) {
    EXPECT_TRUE(HasKindWithCorr(window.value().events, TraceKind::kRequest, corr))
        << "corr 0x" << std::hex << corr << " missing from the server window";
  }
}

// Reconnect hostility: the transport dies mid-flush, the reconnect machine
// replays the session, and the replayed requests must reuse the in-flight
// request's ID (the healed timeline links back to the original attempt)
// while post-heal requests mint fresh ones.
TEST(CausalReconnectTest, ReplayKeepsOriginalIdFreshRequestsMintNew) {
  ServerRunner::Config config;
  config.realtime = false;
  auto runner = ServerRunner::Start(std::move(config));
  ASSERT_NE(runner, nullptr);

  SetupRequest setup;
  setup.order = HostWireOrder();
  const size_t setup_bytes = setup.Encode().size();

  auto faults = std::make_shared<FaultSchedule>();
  // Cut a few bytes into the first post-setup flush: the awaited round
  // trip dies half-sent and heals through the replay machinery.
  faults->CutWriteAt(setup_bytes + 9);
  auto conn_result = runner->ConnectInProcess(faults);
  ASSERT_TRUE(conn_result.ok());
  auto conn = conn_result.take();
  conn->SetErrorHandler([](AFAudioConn&, const ErrorPacket&) {});
  conn->SetIOErrorHandler([](AFAudioConn&) {});
  AFAudioConn::ReconnectPolicy policy;
  policy.enabled = true;
  policy.backoff_ms = 1;
  conn->SetReconnectPolicy(policy);
  conn->SetReconnectFactory([&runner]() -> Result<FdStream> {
    auto pair = CreateStreamPair();
    if (!pair.ok()) {
      return pair.status();
    }
    runner->server().AdoptClient(std::move(pair.value().second));
    return std::move(pair.value().first);
  });
  conn->SetClientTracing(true);

  // Session state worth replaying, then the awaited request that hits the
  // cut and rides the reconnect.
  conn->SetInputGain(0, -6);
  auto t = conn->GetTime(0);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(conn->reconnects(), 1u);
  EXPECT_FALSE(conn->broken());

  std::vector<TraceEvent> client_events;
  conn->client_trace().Drain(&client_events);
  // The awaited GetTime's ID: its enqueue is the last GetTime enqueue.
  const auto get_time_corrs = EnqueueCorrs(client_events, Opcode::kGetTime);
  ASSERT_FALSE(get_time_corrs.empty());
  const uint64_t original = get_time_corrs.back();

  // The session replay re-enqueued requests under the original ID: at
  // least one non-GetTime enqueue (the replayed SetInputGain and friends)
  // must carry it, and the awaited round trip's reply span keeps it.
  size_t replayed = 0;
  for (const TraceEvent& ev : client_events) {
    if (KindOf(ev) == TraceKind::kClientEnqueue && ev.corr == original &&
        ev.arg != static_cast<uint8_t>(Opcode::kGetTime)) {
      ++replayed;
    }
  }
  EXPECT_GT(replayed, 0u) << "no replayed request reused the in-flight ID";
  EXPECT_TRUE(HasKindWithCorr(client_events, TraceKind::kClientReply, original));

  // Fresh traffic after the heal mints new IDs.
  ASSERT_TRUE(conn->GetTime(0).ok());
  client_events.clear();
  conn->client_trace().Drain(&client_events);
  const auto fresh = EnqueueCorrs(client_events, Opcode::kGetTime);
  ASSERT_FALSE(fresh.empty());
  EXPECT_NE(fresh.back(), original);
}

// Mailbox hostility: wedge shard 1's loop and storm property-change
// events at it until its mailbox ring spills, then prove a traced
// cross-shard request still links up end to end.
TEST_F(CausalShardTest, CorrelationSurvivesMailboxSpillStorm) {
  auto stormer = ConnectOnShard(0);
  auto prober = ConnectOnShard(2);
  ASSERT_NE(stormer, nullptr);
  ASSERT_NE(prober, nullptr);
  prober->SetClientTracing(true);
  ASSERT_TRUE(prober->GetTrace(kTraceFlagEnable).ok());

  // Wedge shard 1: its loop thread parks in this post until released.
  std::atomic<bool> release{false};
  std::atomic<bool> wedged{false};
  runner_->server().shard(1)->Post([&] {
    wedged.store(true);
    while (!release.load(std::memory_order_relaxed)) {
    }
  });
  runner_->server().shard(1)->Wake();
  while (!wedged.load(std::memory_order_relaxed)) {
  }

  // Each property change on the shard-0 device fans one event post into
  // every other shard's mailbox; shard 1 cannot drain, so its ring
  // overflows into the spill vector.
  const size_t storm = ShardMailbox::kRingCapacity + 64;
  const uint8_t payload[] = {'c', 'o', 'r', 'r'};
  for (size_t i = 0; i < storm; ++i) {
    stormer->ChangeProperty(0, kAtomLAST_NUMBER_DIALED, kAtomSTRING, 8,
                            PropertyMode::kReplace, payload);
  }
  stormer->Sync();
  EXPECT_GT(runner_->server().shard(1)->mailbox_spills(), 0u)
      << "storm did not overflow the mailbox ring";
  release.store(true);

  // With the spill drained, a traced cross-shard request still carries its
  // ID across the (freshly stressed) mailbox.
  ASSERT_TRUE(prober->GetTime(runner_->codec_id()).ok());
  auto window = prober->GetTrace(kTraceFlagDisable);
  ASSERT_TRUE(window.ok());
  std::vector<TraceEvent> client_events;
  prober->client_trace().Drain(&client_events);
  const auto corrs = EnqueueCorrs(client_events, Opcode::kGetTime);
  ASSERT_FALSE(corrs.empty());
  const uint64_t corr = corrs.back();
  EXPECT_TRUE(HasKindWithCorr(window.value().events, TraceKind::kMailboxHop, corr));
  EXPECT_TRUE(HasKindWithCorr(window.value().events, TraceKind::kRemoteExec, corr));
}

// The merge pipeline: client ring + server window on one clock, one
// budget row per awaited request, components summing exactly to the
// client-observed total (the acceptance bar is "within 5%"; telescoping
// makes it exact).
TEST_F(CausalShardTest, MergedLatencyBudgetTelescopesExactly) {
  auto conn = ConnectOnShard(2);
  ASSERT_NE(conn, nullptr);
  conn->SetClientTracing(true);
  ASSERT_TRUE(conn->GetTrace(kTraceFlagEnable).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(conn->GetTime(runner_->codec_id()).ok());  // cross-shard probes
  }
  auto window = conn->GetTrace(kTraceFlagDisable);
  ASSERT_TRUE(window.ok());
  TraceWire merged = window.take();
  std::vector<TraceEvent> client_events;
  conn->client_trace().Drain(&client_events);
  ASSERT_FALSE(client_events.empty());

  MergeClientServerTrace(&merged, std::move(client_events));
  const auto rows = ComputeLatencyBudget(merged);
  ASSERT_GE(rows.size(), 6u);

  bool any_cross_shard = false;
  for (const LatencyBudgetRow& row : rows) {
    const int64_t sum = row.client_queue_us + row.wire_us + row.poll_wake_us +
                        row.dispatch_us + row.mailbox_us + row.mix_us +
                        row.egress_us;
    EXPECT_EQ(sum, row.total_us) << "corr 0x" << std::hex << row.corr;
    EXPECT_GE(row.total_us, 0);
    any_cross_shard = any_cross_shard || row.cross_shard;
  }
  EXPECT_TRUE(any_cross_shard) << "no probe took the mailbox path";

  // The merged JSON renders with flow arrows and embeds the budget.
  const std::string json = FormatMergedTraceJson(merged, rows);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("latency_budget_us"), std::string::npos);
  EXPECT_FALSE(FormatLatencyBudget(rows).empty());
}

// Clock alignment in isolation: shift a synthetic client ring by a known
// skew and check the estimator recovers it through the corr-matched pair.
TEST(MergeClientServerTraceTest, RecoversAKnownClockSkew) {
  constexpr int64_t kSkew = 5'000'000;  // client clock 5 s behind the server
  TraceWire server;
  TraceEvent req;
  req.kind = static_cast<uint8_t>(TraceKind::kRequest);
  req.conn = 1;
  req.host_us = 1'000'100;
  req.dur_us = 30;
  req.corr = 0xABC;
  server.events.push_back(req);

  std::vector<TraceEvent> client;
  TraceEvent reply;
  reply.kind = static_cast<uint8_t>(TraceKind::kClientReply);
  reply.host_us = static_cast<uint64_t>(1'000'000 - kSkew);  // enqueue, client clock
  reply.dur_us = 230;  // server span sits inside with 100us legs each way
  reply.corr = 0xABC;
  client.push_back(reply);

  const int64_t offset = MergeClientServerTrace(&server, client);
  // Midpoint estimator: true skew recovered exactly when the span nests
  // symmetrically (the synthetic case here).
  EXPECT_EQ(offset, kSkew);
  ASSERT_EQ(server.events.size(), 2u);
  // Events come back sorted on the merged clock.
  EXPECT_LE(server.events[0].host_us, server.events[1].host_us);
}

// The generation-gated ring keeps the hot-path contract: enabling through
// a shared gate, recording (including the self-recorded kTraceStart on a
// fresh generation), and wrap-around drop counting allocate nothing.
TEST(CausalZeroAllocTest, GatedRecordPathDoesNotAllocate) {
  std::atomic<uint64_t> gate{0};
  TraceRing ring(64);  // the ring's one allocation happens here
  ring.AttachGenerationGate(&gate);
  ring.Enable(true);

  TraceEvent ev;
  ev.kind = static_cast<uint8_t>(TraceKind::kRequest);
  ev.corr = 0x1234;

  g_alloc_count = 0;
  g_alloc_armed = true;
  for (int window = 0; window < 4; ++window) {
    for (int i = 0; i < 200; ++i) {  // 200 > capacity: the drop path runs too
      ev.host_us = static_cast<uint64_t>(i);
      ring.Record(ev);
    }
    ring.Enable(false);  // flip the generation so the next window re-stamps
    ring.Enable(true);
  }
  // One last small window that fits in the ring, so its start marker
  // survives the wrap for the drain check below.
  for (int i = 0; i < 8; ++i) {
    ring.Record(ev);
  }
  g_alloc_armed = false;

  EXPECT_EQ(g_alloc_count, 0u) << "the gated record path allocated";
  EXPECT_GT(ring.recorded(), 0u);
  EXPECT_GT(ring.dropped(), 0u);  // the wrap really happened inside the armed region

  std::vector<TraceEvent> drained;
  ring.Drain(&drained);
  ASSERT_FALSE(drained.empty());
  // The ring self-recorded a start marker carrying the live generation.
  bool start_seen = false;
  for (const TraceEvent& e : drained) {
    if (KindOf(e) == TraceKind::kTraceStart) {
      start_seen = true;
      EXPECT_EQ(e.value & 1, 1u) << "capture generations are odd";
    }
  }
  EXPECT_TRUE(start_seen);
  ring.AttachGenerationGate(nullptr);
}

// Flight recorder round trip: arm via the environment, snapshot a live
// server with the SIGUSR2 entry point, and decode the dump with the
// post-mortem loader.
TEST(FlightRecorderTest, DumpRoundTripsThroughLoader) {
  // PID-unique: the plain and _shard4 ctest variants run concurrently.
  const std::string path = ::testing::TempDir() + "/causal_flight." +
                           std::to_string(::getpid()) + ".dump";
  ::setenv("AF_FLIGHT_RECORDER", path.c_str(), 1);

  ServerRunner::Config config;
  config.realtime = false;
  auto runner = ServerRunner::Start(std::move(config));
  ASSERT_NE(runner, nullptr);
  ASSERT_TRUE(FlightRecorderArmed());
  ::unsetenv("AF_FLIGHT_RECORDER");

  auto conn_result = runner->ConnectInProcess();
  ASSERT_TRUE(conn_result.ok());
  auto conn = conn_result.take();
  conn->SetClientTracing(true);
  ASSERT_TRUE(conn->GetTrace(kTraceFlagEnable).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(conn->GetTime(0).ok());
  }

  // Close the window before snapshotting: a real crash dump reads rings
  // while writers are live and tolerates the torn records (the loader
  // drops them), but the round-trip check wants a quiesced, complete dump
  // — and keeps TSan meaningful for the rest of the battery.
  ASSERT_TRUE(conn->GetTrace(kTraceFlagDisable).ok());
  FlightRecorderDumpNow();  // what the SIGUSR2 handler runs

  auto dump = LoadFlightRecorderDump(path);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_FALSE(dump.value().trace.events.empty());
  EXPECT_FALSE(dump.value().counters_text.empty());
  EXPECT_NE(dump.value().counters_text.find("requests_dispatched"),
            std::string::npos);
  // The dumped window decodes into the normal renderers, corr included.
  bool corr_seen = false;
  for (const TraceEvent& ev : dump.value().trace.events) {
    ASSERT_GE(ev.kind, 1u);
    ASSERT_LE(ev.kind, static_cast<uint8_t>(TraceKind::kTraceGap));
    corr_seen = corr_seen || ev.corr != 0;
  }
  EXPECT_TRUE(corr_seen) << "no dumped record carried a correlation ID";
  EXPECT_FALSE(FormatTraceText(dump.value().trace).empty());
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, LoaderRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/causal_garbage." +
                           std::to_string(::getpid()) + ".dump";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "this is not a flight dump";
  fwrite(junk, 1, sizeof(junk), f);
  fclose(f);
  EXPECT_FALSE(LoadFlightRecorderDump(path).ok());
  EXPECT_FALSE(LoadFlightRecorderDump(path + ".missing").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace af
