// Event tracing: the ring, the rate-limited logger, the wire form, and the
// GetTrace request end to end.
//
// The ring tests pin down the overwrite contract (oldest records lost,
// every loss counted in dropped() and the attached Counter). The wire
// tests round-trip a snapshot through TraceWire and then damage it every
// way the decoder guards against: truncation at every byte, an absurd
// event count, an undersized per-event size. The end-to-end test drives a
// real connection through a fault-injecting transport and checks that the
// drained window contains the request spans and transport instants the
// workload must have produced.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "client/connection.h"
#include "clients/server_runner.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "proto/stats.h"
#include "proto/trace_wire.h"
#include "transport/fault_stream.h"

namespace af {
namespace {

TraceEvent MakeEvent(TraceKind kind, uint64_t value) {
  TraceEvent ev;
  ev.kind = static_cast<uint8_t>(kind);
  ev.value = value;
  return ev;
}

TEST(TraceRingTest, DisabledRecordIsANoOp) {
  TraceRing ring(8);
  ring.Record(MakeEvent(TraceKind::kRead, 1));
  EXPECT_EQ(ring.recorded(), 0u);
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.Drain(&out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(9).capacity(), 16u);
  EXPECT_EQ(TraceRing(1).capacity(), 2u);  // degenerate sizes clamp to 2
}

TEST(TraceRingTest, DrainReturnsRecordsOldestFirst) {
  TraceRing ring(8);
  ring.Enable(true);
  for (uint64_t i = 0; i < 5; ++i) {
    ring.Record(MakeEvent(TraceKind::kRead, i));
  }
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.Drain(&out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].value, i);
  }
  EXPECT_EQ(ring.dropped(), 0u);
  // A second drain finds nothing new.
  out.clear();
  EXPECT_EQ(ring.Drain(&out), 0u);
}

TEST(TraceRingTest, WrapDropsOldestAndCountsEveryLoss) {
  TraceRing ring(8);
  Counter drops;
  ring.AttachDropCounter(&drops);
  ring.Enable(true);
  for (uint64_t i = 0; i < 12; ++i) {
    ring.Record(MakeEvent(TraceKind::kRead, i));
  }
  // 12 records into an 8-slot ring: the 4 oldest were overwritten.
  EXPECT_EQ(ring.dropped(), 4u);
  EXPECT_EQ(drops.Value(), 4u);
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.Drain(&out), 8u);
  ASSERT_EQ(out.size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i].value, i + 4);  // survivors are the newest 8, in order
  }
  // After the drain the window is current again: no further drops until
  // another full wrap.
  ring.Record(MakeEvent(TraceKind::kRead, 99));
  EXPECT_EQ(ring.dropped(), 4u);
  ring.AttachDropCounter(nullptr);
}

TEST(TraceRingTest, ClearForgetsWithoutCountingDrops) {
  TraceRing ring(8);
  ring.Enable(true);
  for (uint64_t i = 0; i < 6; ++i) {
    ring.Record(MakeEvent(TraceKind::kFlush, i));
  }
  ring.Clear();
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.Drain(&out), 0u);
}

TEST(TraceKindTest, EveryKindHasAName) {
  for (int k = 0; k <= static_cast<int>(TraceKind::kTraceGap); ++k) {
    const char* name = TraceKindName(static_cast<TraceKind>(k));
    ASSERT_NE(name, nullptr) << "kind " << k;
    EXPECT_NE(std::strcmp(name, "?"), 0) << "kind " << k;
  }
}

// --- RateLimitedLog ---------------------------------------------------------

TEST(RateLimitedLogTest, FirstCallLogsAndWindowSuppresses) {
  RateLimitedLog log(1000000);
  uint64_t suppressed = 123;
  EXPECT_TRUE(log.ShouldLog(10, &suppressed));
  EXPECT_EQ(suppressed, 0u);
  // Inside the window: swallowed and counted.
  EXPECT_FALSE(log.ShouldLog(500000, &suppressed));
  EXPECT_FALSE(log.ShouldLog(1000000, &suppressed));
  EXPECT_EQ(log.pending_suppressed(), 2u);
  // Past the window: logs again and reports what was swallowed.
  EXPECT_TRUE(log.ShouldLog(10 + 1000000, &suppressed));
  EXPECT_EQ(suppressed, 2u);
  EXPECT_EQ(log.pending_suppressed(), 0u);
  // The window re-anchors on the emitted message.
  EXPECT_FALSE(log.ShouldLog(10 + 1500000, &suppressed));
  EXPECT_TRUE(log.ShouldLog(10 + 2000001, &suppressed));
  EXPECT_EQ(suppressed, 1u);
}

// --- TraceWire --------------------------------------------------------------

TraceWire MakeSnapshot() {
  TraceWire t;
  t.enabled = 1;
  t.dropped = 7;
  t.host_now_us = 123456789;
  for (uint64_t i = 0; i < 3; ++i) {
    TraceEvent ev;
    ev.kind = static_cast<uint8_t>(TraceKind::kRequest);
    ev.arg = static_cast<uint8_t>(i + 1);
    ev.conn = 100 + static_cast<uint32_t>(i);
    ev.device = static_cast<uint32_t>(i);
    ev.dev_time = 4000 + static_cast<uint32_t>(i);
    ev.host_us = 1000000 + i;
    ev.dur_us = 42 + static_cast<uint32_t>(i);
    ev.value = 1ull << (20 + i);
    ev.shard = static_cast<uint16_t>(i);
    ev.corr = 0xC0FFEE00u + i;
    ev.seq = 900 + i;
    t.events.push_back(ev);
  }
  return t;
}

TEST(TraceWireTest, RoundTripPreservesEveryField) {
  const TraceWire t = MakeSnapshot();
  for (const WireOrder order : {WireOrder::kLittle, WireOrder::kBig}) {
    WireWriter w(order);
    t.Encode(w, 17);
    TraceWire d;
    ASSERT_TRUE(TraceWire::Decode(w.data(), order, &d));
    EXPECT_EQ(d.version, kTraceWireVersion);
    EXPECT_EQ(d.enabled, t.enabled);
    EXPECT_EQ(d.dropped, t.dropped);
    EXPECT_EQ(d.host_now_us, t.host_now_us);
    ASSERT_EQ(d.events.size(), t.events.size());
    for (size_t i = 0; i < t.events.size(); ++i) {
      EXPECT_EQ(d.events[i].kind, t.events[i].kind) << i;
      EXPECT_EQ(d.events[i].arg, t.events[i].arg) << i;
      EXPECT_EQ(d.events[i].conn, t.events[i].conn) << i;
      EXPECT_EQ(d.events[i].device, t.events[i].device) << i;
      EXPECT_EQ(d.events[i].dev_time, t.events[i].dev_time) << i;
      EXPECT_EQ(d.events[i].host_us, t.events[i].host_us) << i;
      EXPECT_EQ(d.events[i].dur_us, t.events[i].dur_us) << i;
      EXPECT_EQ(d.events[i].value, t.events[i].value) << i;
      EXPECT_EQ(d.events[i].shard, t.events[i].shard) << i;
      EXPECT_EQ(d.events[i].corr, t.events[i].corr) << i;
      EXPECT_EQ(d.events[i].seq, t.events[i].seq) << i;
    }
  }
}

TEST(TraceWireTest, TruncationAtEveryByteIsRejectedNotCrashed) {
  WireWriter w;
  MakeSnapshot().Encode(w, 3);
  const std::vector<uint8_t> full(w.data().begin(), w.data().end());
  for (size_t cut = 0; cut < full.size(); ++cut) {
    TraceWire d;
    const bool ok =
        TraceWire::Decode(std::span<const uint8_t>(full.data(), cut),
                          HostWireOrder(), &d);
    EXPECT_FALSE(ok) << "decoded from a " << cut << "-byte prefix of "
                     << full.size();
  }
  TraceWire d;
  EXPECT_TRUE(TraceWire::Decode(full, HostWireOrder(), &d));
}

TEST(TraceWireTest, DamagedCountAndEventSizeAreRejected) {
  WireWriter w;
  MakeSnapshot().Encode(w, 3);
  const std::vector<uint8_t> good(w.data().begin(), w.data().end());
  // Body layout after the 32-byte reply unit: version u32, enabled u32,
  // dropped u64, host_now_us u64, event_bytes u32, count u32.
  const size_t event_bytes_at = kReplyBaseBytes + 24;
  const size_t count_at = kReplyBaseBytes + 28;
  ASSERT_GT(good.size(), count_at + 4);

  std::vector<uint8_t> bad = good;
  std::memset(bad.data() + count_at, 0xFF, 4);  // absurd count, any order
  TraceWire d;
  EXPECT_FALSE(TraceWire::Decode(bad, HostWireOrder(), &d));

  bad = good;
  std::memset(bad.data() + event_bytes_at, 0, 4);  // event_bytes below minimum
  EXPECT_FALSE(TraceWire::Decode(bad, HostWireOrder(), &d));

  bad = good;
  std::memset(bad.data() + event_bytes_at, 0xFF, 4);  // absurd event size
  EXPECT_FALSE(TraceWire::Decode(bad, HostWireOrder(), &d));
}

TEST(TraceWireTest, LargerEventRecordsFromAFutureServerAreSkippedNotMisread) {
  // Append-only evolution: a future build may grow each event record. A
  // present-day reader must consume the declared event_bytes and still
  // land on the next record. Simulate by hand-encoding a snapshot whose
  // records carry 8 trailing bytes of "new fields".
  const TraceWire t = MakeSnapshot();
  const uint32_t grown = kTraceEventWireBytes + 8;
  WireWriter w;
  w.U8(kReplyPacketType);
  w.U8(0);
  w.U16(9);
  const uint32_t body =
      4 + 4 + 8 + 8 + 4 + 4 + grown * static_cast<uint32_t>(t.events.size());
  w.U32((body + 3) / 4);
  w.Zero(kReplyBaseBytes - 8);
  w.U32(t.version);
  w.U32(t.enabled);
  w.U64(t.dropped);
  w.U64(t.host_now_us);
  w.U32(grown);
  w.U32(static_cast<uint32_t>(t.events.size()));
  for (const TraceEvent& ev : t.events) {
    w.U8(ev.kind);
    w.U8(ev.arg);
    w.U16(ev.shard);
    w.U32(ev.conn);
    w.U32(ev.device);
    w.U32(ev.dev_time);
    w.U64(ev.host_us);
    w.U32(ev.dur_us);
    w.U32(0);
    w.U64(ev.value);
    w.U64(ev.corr);
    w.U64(ev.seq);
    w.U64(0xDEADBEEF);  // a future field this reader has never heard of
  }
  w.AlignPad();
  TraceWire d;
  ASSERT_TRUE(TraceWire::Decode(w.data(), HostWireOrder(), &d));
  ASSERT_EQ(d.events.size(), t.events.size());
  for (size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(d.events[i].conn, t.events[i].conn) << i;
    EXPECT_EQ(d.events[i].value, t.events[i].value) << i;
  }
}

TEST(TraceWireTest, V1RecordsWithoutCorrFieldsStillDecode) {
  // Snapshots from a pre-correlation server advertise 40-byte records.
  // They must decode forever, with the appended fields reading as zero.
  const TraceWire t = MakeSnapshot();
  WireWriter w;
  w.U8(kReplyPacketType);
  w.U8(0);
  w.U16(9);
  const uint32_t body = 4 + 4 + 8 + 8 + 4 + 4 +
                        static_cast<uint32_t>(kTraceEventWireBytesV1 * t.events.size());
  w.U32((body + 3) / 4);
  w.Zero(kReplyBaseBytes - 8);
  w.U32(t.version);
  w.U32(t.enabled);
  w.U64(t.dropped);
  w.U64(t.host_now_us);
  w.U32(static_cast<uint32_t>(kTraceEventWireBytesV1));
  w.U32(static_cast<uint32_t>(t.events.size()));
  for (const TraceEvent& ev : t.events) {
    w.U8(ev.kind);
    w.U8(ev.arg);
    w.U16(ev.shard);
    w.U32(ev.conn);
    w.U32(ev.device);
    w.U32(ev.dev_time);
    w.U64(ev.host_us);
    w.U32(ev.dur_us);
    w.U32(0);
    w.U64(ev.value);
  }
  w.AlignPad();
  TraceWire d;
  ASSERT_TRUE(TraceWire::Decode(w.data(), HostWireOrder(), &d));
  ASSERT_EQ(d.events.size(), t.events.size());
  for (size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(d.events[i].conn, t.events[i].conn) << i;
    EXPECT_EQ(d.events[i].value, t.events[i].value) << i;
    EXPECT_EQ(d.events[i].corr, 0u) << i;
    EXPECT_EQ(d.events[i].seq, 0u) << i;
  }
}

// --- GetTrace end to end ----------------------------------------------------

class TraceEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The global ring is shared across tests in this binary; start from a
    // known-quiet state.
    GlobalTrace().Enable(false);
    GlobalTrace().Clear();
    ServerRunner::Config config;
    config.with_codec = true;
    config.realtime = false;
    runner_ = ServerRunner::Start(config);
    ASSERT_NE(runner_, nullptr);
  }

  void TearDown() override {
    GlobalTrace().Enable(false);
    GlobalTrace().Clear();
  }

  std::unique_ptr<ServerRunner> runner_;
};

size_t CountKind(const std::vector<TraceEvent>& events, TraceKind kind) {
  size_t n = 0;
  for (const TraceEvent& ev : events) {
    if (ev.kind == static_cast<uint8_t>(kind)) {
      ++n;
    }
  }
  return n;
}

TEST_F(TraceEndToEndTest, WindowOverFaultInjectedConnectionHasTheWorkload) {
  // The server end reads through a schedule that fragments every transfer,
  // so the window must also contain fault-applied instants.
  auto faults = std::make_shared<FaultSchedule>();
  faults->SetMaxReadChunk(8);
  auto opened = runner_->ConnectInProcess(nullptr, faults);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<AFAudioConn> conn = opened.take();

  auto first = conn->GetTrace(kTraceFlagEnable);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().enabled, 1u);

  // A small workload whose spans must show up in the window.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(conn->GetTime(0).ok());
  }

  auto snap = conn->GetTrace(kTraceFlagDisable);
  ASSERT_TRUE(snap.ok());
  const TraceWire& t = snap.value();
  EXPECT_EQ(t.enabled, 0u);
  EXPECT_EQ(t.version, kTraceWireVersion);
  EXPECT_GT(t.host_now_us, 0u);

  size_t get_time_spans = 0;
  for (const TraceEvent& ev : t.events) {
    if (ev.kind == static_cast<uint8_t>(TraceKind::kRequest) &&
        ev.arg == static_cast<uint8_t>(Opcode::kGetTime)) {
      ++get_time_spans;
      EXPECT_NE(ev.conn, 0u);
      EXPECT_GT(ev.host_us, 0u);
    }
  }
  EXPECT_EQ(get_time_spans, 5u);
  // The transport read instants for those requests, and the fragmenting
  // schedule's fault instants, ride in the same window.
  EXPECT_GT(CountKind(t.events, TraceKind::kRead), 0u);
  EXPECT_GT(CountKind(t.events, TraceKind::kFaultApplied), 0u);

  // After the disabling fetch, traffic leaves no records.
  ASSERT_TRUE(conn->GetTime(0).ok());
  auto after = conn->GetTrace(0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().enabled, 0u);
  EXPECT_EQ(CountKind(after.value().events, TraceKind::kRequest), 0u);
}

TEST_F(TraceEndToEndTest, DroppedEventsSurfaceInServerStats) {
  auto opened = runner_->ConnectInProcess();
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<AFAudioConn> conn = opened.take();

  ASSERT_TRUE(conn->GetTrace(kTraceFlagEnable).ok());
  // Overflow the ring from the server loop thread (the ring's writer), so
  // the drop accounting is exercised exactly as in production.
  const size_t capacity = GlobalTrace().capacity();
  runner_->RunOnLoop([&] {
    TraceEvent ev;
    ev.kind = static_cast<uint8_t>(TraceKind::kFlush);
    for (size_t i = 0; i < capacity + 10; ++i) {
      GlobalTrace().Record(ev);
    }
  });

  auto snap = conn->GetTrace(kTraceFlagDisable);
  ASSERT_TRUE(snap.ok());
  EXPECT_GE(snap.value().dropped, 10u);
  EXPECT_EQ(snap.value().events.size(), capacity);

  auto stats = conn->GetServerStats();
  ASSERT_TRUE(stats.ok());
  // trace_dropped_events is the last appended global counter; find it by
  // name so reordering the table would fail loudly here.
  size_t index = kNumServerCounters;
  for (size_t i = 0; i < kNumServerCounters; ++i) {
    if (std::strcmp(kServerCounterNames[i], "trace_dropped_events") == 0) {
      index = i;
    }
  }
  ASSERT_LT(index, kNumServerCounters);
  ASSERT_GT(stats.value().counters.size(), index);
  EXPECT_GE(stats.value().counters[index], 10u);
}

}  // namespace
}  // namespace af
