// Readiness backends: poll and epoll must be observationally identical.
//
// Every scenario watches the same fds with a Poller of each backend and
// compares the events field by field — the differential half of the
// AF_POLLER ablation (the torture and fault-injection suites are also
// re-run under AF_POLLER=poll by CMake, under the `backend` label).
// Timeout edge cases (negative = forever, 0 = non-blocking, values past
// INT_MAX) and EINTR retry behaviour are covered directly: a signal
// arriving mid-wait must consume the remaining timeout, not surface as a
// spurious empty wake.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

#include "clients/server_runner.h"
#include "transport/poller.h"
#include "transport/stream.h"

namespace af {
namespace {

std::string BackendName(const ::testing::TestParamInfo<Poller::Backend>& info) {
  return info.param == Poller::Backend::kEpoll ? "epoll" : "poll";
}

class PollerBackendTest : public ::testing::TestWithParam<Poller::Backend> {
 protected:
  Poller MakePoller() { return Poller(GetParam()); }
};

TEST_P(PollerBackendTest, NameMatchesBackend) {
  Poller poller = MakePoller();
  EXPECT_EQ(poller.backend(), GetParam());
  EXPECT_STREQ(poller.backend_name(),
               GetParam() == Poller::Backend::kEpoll ? "epoll" : "poll");
}

TEST_P(PollerBackendTest, ReadableWritableAndUnwatch) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  Poller poller = MakePoller();

  poller.Watch(b.fd(), true, false);
  EXPECT_EQ(poller.watched(), 1u);
  EXPECT_TRUE(poller.Wait(0).empty());

  const char byte = '!';
  a.WriteAll(&byte, 1);
  {
    const auto& events = poller.Wait(1000);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].fd, b.fd());
    EXPECT_TRUE(events[0].readable);
    EXPECT_FALSE(events[0].writable);
  }

  // Interest change: the same fd, now write-only. The pending byte must
  // no longer produce a readable event; the empty socket buffer makes the
  // fd writable immediately.
  poller.Watch(b.fd(), false, true);
  EXPECT_EQ(poller.watched(), 1u);
  {
    const auto& events = poller.Wait(1000);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_FALSE(events[0].readable);
    EXPECT_TRUE(events[0].writable);
  }

  poller.Unwatch(b.fd());
  EXPECT_EQ(poller.watched(), 0u);
  EXPECT_TRUE(poller.Wait(0).empty());
}

TEST_P(PollerBackendTest, ReWatchSameInterestIsIdempotent) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  Poller poller = MakePoller();
  // The server re-asserts every interest each loop iteration; doing so
  // many times over must not duplicate events or grow the watch set.
  for (int i = 0; i < 100; ++i) {
    poller.Watch(b.fd(), true, false);
  }
  EXPECT_EQ(poller.watched(), 1u);
  const char byte = 'x';
  a.WriteAll(&byte, 1);
  EXPECT_EQ(poller.Wait(1000).size(), 1u);
}

TEST_P(PollerBackendTest, TimeoutEdgeCasesWithReadyFd) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  const char byte = 'r';
  a.WriteAll(&byte, 1);
  Poller poller = MakePoller();
  poller.Watch(b.fd(), true, false);
  // A ready fd must be reported regardless of how the timeout is spelled:
  // negative (forever), zero (non-blocking), and values past INT_MAX
  // (which would go negative in a naive int cast and spin or block).
  for (const int64_t timeout : {int64_t{-1}, int64_t{-1000}, int64_t{0},
                                int64_t{1} << 40, INT64_MAX}) {
    const auto& events = poller.Wait(timeout);
    ASSERT_EQ(events.size(), 1u) << "timeout " << timeout;
    EXPECT_TRUE(events[0].readable);
  }
}

// The clamp itself, pinned value by value. It used to live (slightly
// differently) in each backend; now the facade applies it once before
// every backend call, so one table covers both.
TEST(PollerClampTest, NegativeAndOverflowEdges) {
  EXPECT_EQ(Poller::ClampTimeoutMs(-1), -1);
  EXPECT_EQ(Poller::ClampTimeoutMs(-1000), -1);
  EXPECT_EQ(Poller::ClampTimeoutMs(std::numeric_limits<int64_t>::min()), -1);
  EXPECT_EQ(Poller::ClampTimeoutMs(0), 0);
  EXPECT_EQ(Poller::ClampTimeoutMs(1), 1);
  EXPECT_EQ(Poller::ClampTimeoutMs(INT_MAX), INT_MAX);
  // Values past INT_MAX would wrap negative in a naive int cast (turning a
  // finite wait into forever); they must saturate instead.
  EXPECT_EQ(Poller::ClampTimeoutMs(static_cast<int64_t>(INT_MAX) + 1), INT_MAX);
  EXPECT_EQ(Poller::ClampTimeoutMs(int64_t{1} << 32), INT_MAX);
  EXPECT_EQ(Poller::ClampTimeoutMs(std::numeric_limits<int64_t>::max()), INT_MAX);
}

TEST_P(PollerBackendTest, HugeTimeoutStillWakesOnActivity) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  Poller poller = MakePoller();
  poller.Watch(b.fd(), true, false);
  std::thread writer([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const char byte = 'w';
    a.WriteAll(&byte, 1);
  });
  // INT64_MAX milliseconds overflows an int; the clamp must still block
  // (not fail fast) and the write must wake it.
  const auto& events = poller.Wait(INT64_MAX);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].readable);
  writer.join();
}

// --- EINTR retry ------------------------------------------------------------

void IgnoreAlarm(int) {}

TEST_P(PollerBackendTest, SignalDoesNotSurfaceAsEmptyWake) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  Poller poller = MakePoller();
  poller.Watch(b.fd(), true, false);

  // A repeating 20 ms SIGALRM with SA_RESTART off makes the kernel wait
  // return EINTR many times within one logical 200 ms Wait.
  struct sigaction sa = {};
  sa.sa_handler = &IgnoreAlarm;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: the wait call must see EINTR
  struct sigaction old_sa;
  ASSERT_EQ(sigaction(SIGALRM, &sa, &old_sa), 0);
  struct itimerval timer = {};
  timer.it_interval.tv_usec = 20000;
  timer.it_value.tv_usec = 20000;
  ASSERT_EQ(setitimer(ITIMER_REAL, &timer, nullptr), 0);

  const auto start = std::chrono::steady_clock::now();
  const auto& events = poller.Wait(200);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  struct itimerval off = {};
  setitimer(ITIMER_REAL, &off, nullptr);
  sigaction(SIGALRM, &old_sa, nullptr);

  // The wait must run its full course: an early return here would mean a
  // signal was reported as a wake, which double-counts poll_wake_micros
  // and spins the server loop under signal load.
  EXPECT_TRUE(events.empty());
  EXPECT_GE(elapsed.count(), 180);
  (void)a;
}

// --- differential: both backends, same fds, same events ---------------------

// Level-triggered readiness lets one fd be watched by both backends at
// once; whatever scenario we stage must read back identically.
void ExpectSameEvents(int fd, bool want_read, bool want_write) {
  Poller with_poll(Poller::Backend::kPoll);
  Poller with_epoll(Poller::Backend::kEpoll);
  with_poll.Watch(fd, want_read, want_write);
  with_epoll.Watch(fd, want_read, want_write);
  const std::vector<PollEvent> from_poll = with_poll.Wait(100);
  const std::vector<PollEvent> from_epoll = with_epoll.Wait(100);
  ASSERT_EQ(from_poll.size(), from_epoll.size());
  for (size_t i = 0; i < from_poll.size(); ++i) {
    EXPECT_EQ(from_poll[i].fd, from_epoll[i].fd);
    EXPECT_EQ(from_poll[i].readable, from_epoll[i].readable);
    EXPECT_EQ(from_poll[i].writable, from_epoll[i].writable);
    EXPECT_EQ(from_poll[i].closed, from_epoll[i].closed);
  }
}

TEST(PollerDifferentialTest, PendingDataReadsBackIdentically) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  const char byte = 'd';
  a.WriteAll(&byte, 1);
  ExpectSameEvents(b.fd(), true, false);
  ExpectSameEvents(b.fd(), true, true);
}

TEST(PollerDifferentialTest, PeerCloseReadsBackIdentically) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  a.Close();
  // AF_UNIX stream sockets report hangup when the peer closes; both
  // backends must agree on the {readable, closed} combination the server
  // uses to schedule the final drain-then-teardown.
  ExpectSameEvents(b.fd(), true, false);
}

TEST(PollerDifferentialTest, WritableOnlyReadsBackIdentically) {
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ExpectSameEvents(b.fd(), false, true);
  (void)a;
}

INSTANTIATE_TEST_SUITE_P(Backends, PollerBackendTest,
                         ::testing::Values(Poller::Backend::kPoll,
                                           Poller::Backend::kEpoll),
                         BackendName);

// --- selection and end-to-end service --------------------------------------

TEST(PollerEnvTest, BackendFromEnvironment) {
  setenv("AF_POLLER", "poll", 1);
  EXPECT_EQ(PollerBackendFromEnv(), Poller::Backend::kPoll);
  EXPECT_EQ(Poller().backend(), Poller::Backend::kPoll);
  setenv("AF_POLLER", "epoll", 1);
  EXPECT_EQ(PollerBackendFromEnv(), Poller::Backend::kEpoll);
  unsetenv("AF_POLLER");
#ifdef __linux__
  EXPECT_EQ(PollerBackendFromEnv(), Poller::Backend::kEpoll);
#else
  EXPECT_EQ(PollerBackendFromEnv(), Poller::Backend::kPoll);
#endif
}

// A full server round trip under each explicitly selected backend: the
// loop must accept, serve requests, and tear down identically.
void RoundTripUnderBackend(const char* backend) {
  setenv("AF_POLLER", backend, 1);
  ServerRunner::Config config;
  config.with_codec = true;
  config.realtime = false;
  auto runner = ServerRunner::Start(config);
  unsetenv("AF_POLLER");
  ASSERT_NE(runner, nullptr);
  auto conn = runner->ConnectInProcess();
  ASSERT_TRUE(conn.ok());
  auto client = conn.take();
  auto t1 = client->GetTime(0);
  ASSERT_TRUE(t1.ok());
  auto t2 = client->GetTime(0);
  ASSERT_TRUE(t2.ok());
  EXPECT_GE(t2.value(), t1.value());
}

TEST(PollerEnvTest, ServerServesUnderPollBackend) { RoundTripUnderBackend("poll"); }

TEST(PollerEnvTest, ServerServesUnderEpollBackend) { RoundTripUnderBackend("epoll"); }

}  // namespace
}  // namespace af
