// Device-time algebra: the 32-bit wrapping comparison rules of CRL 93/8
// Section 2.1 ("compute their 32-bit two's complement difference; the most
// significant bit gives the result").
#include "common/atime.h"

#include <gtest/gtest.h>

namespace af {
namespace {

TEST(ATimeTest, BasicOrdering) {
  EXPECT_TRUE(TimeAfter(100, 50));
  EXPECT_FALSE(TimeAfter(50, 100));
  EXPECT_FALSE(TimeAfter(50, 50));
  EXPECT_TRUE(TimeBefore(50, 100));
  EXPECT_TRUE(TimeAtOrAfter(50, 50));
  EXPECT_TRUE(TimeAtOrBefore(50, 50));
}

TEST(ATimeTest, PaperExample) {
  // "if ((int)(b - a) == 8000) time b is one second later than time a"
  // for a device running at 8000 samples per second.
  const ATime a = 123456;
  const ATime b = a + 8000;
  EXPECT_EQ(TimeDelta(b, a), 8000);
  EXPECT_EQ(SecondsToTicks(1.0, 8000), 8000u);
}

TEST(ATimeTest, OrderingAcrossWrap) {
  const ATime before_wrap = 0xFFFFFF00u;
  const ATime after_wrap = 0x00000100u;
  EXPECT_TRUE(TimeAfter(after_wrap, before_wrap));
  EXPECT_TRUE(TimeBefore(before_wrap, after_wrap));
  EXPECT_EQ(TimeDelta(after_wrap, before_wrap), 0x200);
}

TEST(ATimeTest, HalfRangeBoundary) {
  // Times exactly 2^31 apart flip from distant past to distant future.
  const ATime t = 1000;
  EXPECT_TRUE(TimeBefore(t + 0x7FFFFFFFu, t) == false);
  EXPECT_TRUE(TimeAfter(t + 0x7FFFFFFFu, t));
  // At exactly 2^31 the difference is negative in two's complement.
  EXPECT_FALSE(TimeAfter(t + 0x80000000u, t));
}

TEST(ATimeTest, MinMaxClamp) {
  EXPECT_EQ(TimeMax(10, 20), 20u);
  EXPECT_EQ(TimeMin(10, 20), 10u);
  EXPECT_EQ(TimeClamp(5, 10, 20), 10u);
  EXPECT_EQ(TimeClamp(15, 10, 20), 15u);
  EXPECT_EQ(TimeClamp(25, 10, 20), 20u);
  // Across the wrap.
  const ATime begin = 0xFFFFFFF0u;
  const ATime end = 0x10u;
  EXPECT_EQ(TimeClamp(0xFFFFFFE0u, begin, end), begin);
  EXPECT_EQ(TimeClamp(0x20u, begin, end), end);
  EXPECT_EQ(TimeClamp(0x5u, begin, end), 0x5u);
}

TEST(ATimeTest, IntervalMembership) {
  EXPECT_TRUE(TimeInInterval(5, 0, 10));
  EXPECT_FALSE(TimeInInterval(10, 0, 10));  // half-open
  EXPECT_TRUE(TimeInInterval(0, 0, 10));
  const ATime begin = 0xFFFFFFFEu;
  EXPECT_TRUE(TimeInInterval(0x1u, begin, 0x5u));
  EXPECT_FALSE(TimeInInterval(0x6u, begin, 0x5u));
}

// The comparison rules are only meaningful for times less than 2^31 apart;
// these pin the behavior at exactly the boundary, where a delta of 2^31-1
// is the farthest representable future and 2^31 flips to the distant past.
TEST(ATimeTest, WrapBoundaryOrdering) {
  for (const ATime base : {ATime{0}, ATime{1000}, ATime{0x7FFFFFFFu}, ATime{0xFFFFE000u}}) {
    const ATime max_future = base + 0x7FFFFFFFu;  // 2^31 - 1 later
    const ATime flipped = base + 0x80000000u;     // exactly 2^31 later
    EXPECT_TRUE(TimeAfter(max_future, base)) << "base=" << base;
    EXPECT_TRUE(TimeBefore(base, max_future)) << "base=" << base;
    EXPECT_EQ(TimeDelta(max_future, base), 0x7FFFFFFF) << "base=" << base;
    // At exactly 2^31 the two's-complement difference is INT32_MIN:
    // negative, so the "later" time compares as the distant past.
    EXPECT_FALSE(TimeAfter(flipped, base)) << "base=" << base;
    EXPECT_TRUE(TimeBefore(flipped, base)) << "base=" << base;
  }
}

TEST(ATimeTest, WrapBoundaryInterval) {
  const ATime begin = 0xFFFFE000u;
  const ATime widest_end = begin + 0x7FFFFFFFu;  // widest meaningful interval
  EXPECT_TRUE(TimeInInterval(begin, begin, widest_end));
  EXPECT_TRUE(TimeInInterval(begin + 0x7FFFFFFEu, begin, widest_end));
  EXPECT_FALSE(TimeInInterval(widest_end, begin, widest_end));  // half-open
  // A point exactly 2^31 past begin is outside any valid interval.
  EXPECT_FALSE(TimeInInterval(begin + 0x80000000u, begin, widest_end));
}

TEST(ATimeTest, WrapBoundaryClamp) {
  const ATime begin = 0xFFFFE000u;
  const ATime end = begin + 0x7FFFFFFFu;  // widest interval TimeClamp accepts
  EXPECT_EQ(TimeClamp(begin, begin, end), begin);
  EXPECT_EQ(TimeClamp(end, begin, end), end);
  EXPECT_EQ(TimeClamp(begin + 100, begin, end), begin + 100);
  // A value exactly 2^31 past begin compares before begin and clamps there.
  EXPECT_EQ(TimeClamp(begin + 0x80000000u, begin, end), begin);
}

TEST(ATimeTest, SecondsToTicksEdges) {
  // Negative durations (a misuse) yield 0, not a huge wrapped tick count.
  EXPECT_EQ(SecondsToTicks(-1.0, 8000), 0u);
  EXPECT_EQ(SecondsToTicks(-0.001, 48000), 0u);
  EXPECT_EQ(SecondsToTicks(0.0, 8000), 0u);
  // Durations past the half-range clamp to 2^31 - 1 instead of overflowing
  // the double-to-uint32 conversion (which is undefined behavior).
  EXPECT_EQ(SecondsToTicks(1e9, 48000), 0x7FFFFFFFu);
  EXPECT_EQ(SecondsToTicks(268436.0, 8000), 0x7FFFFFFFu);  // just past 2^31 ticks
  // Just inside the range still converts exactly.
  EXPECT_EQ(SecondsToTicks(268435.0, 8000), 2147480000u);
}

TEST(ATimeTest, TickConversions) {
  EXPECT_EQ(SecondsToTicks(4.0, 8000), 32000u);
  EXPECT_DOUBLE_EQ(TicksToSeconds(32000, 8000), 4.0);
  EXPECT_DOUBLE_EQ(TicksToSeconds(-8000, 8000), -1.0);
  // At 48 kHz, 2^31 samples represents about 12 hours (Section 2.1).
  EXPECT_NEAR(TicksToSeconds(0x7FFFFFFF, 48000) / 3600.0, 12.4, 0.1);
}

// Property sweep: for deltas within the half-range, ordering must hold at
// any absolute position, including across the wrap point.
class ATimeWrapProperty : public ::testing::TestWithParam<ATime> {};

TEST_P(ATimeWrapProperty, OrderingIsShiftInvariant) {
  const ATime base = GetParam();
  for (const int32_t delta : {1, 100, 8000, 1 << 20, (1 << 30) - 1}) {
    const ATime later = base + static_cast<ATime>(delta);
    EXPECT_TRUE(TimeAfter(later, base)) << "base=" << base << " delta=" << delta;
    EXPECT_TRUE(TimeBefore(base, later));
    EXPECT_EQ(TimeDelta(later, base), delta);
    EXPECT_EQ(TimeDelta(base, later), -delta);
  }
}

INSTANTIATE_TEST_SUITE_P(AroundTheCircle, ATimeWrapProperty,
                         ::testing::Values(0u, 1u, 0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFFu,
                                           0xFFFFFF00u, 12345678u));

}  // namespace
}  // namespace af
