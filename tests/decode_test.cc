// The wire decoder (proto/decode.h) against the torture corpus: every
// opcode's canonical request must decode to its name; every truncation and
// every single-byte corruption of every request must come back as a string
// instead of a crash. The streaming decoder is fed whole conversations one
// byte at a time to prove the framing holds at every boundary.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "proto/decode.h"
#include "proto/events.h"
#include "proto/requests.h"
#include "proto/setup.h"
#include "proto/trace_wire.h"
#include "torture_util.h"

namespace af {
namespace {

using torture::CanonicalRequest;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(DecodeRequestTest, EveryOpcodeDecodesToItsName) {
  for (uint8_t opi = kMinOpcode; opi <= kMaxOpcode; ++opi) {
    const Opcode op = static_cast<Opcode>(opi);
    const auto req = CanonicalRequest(op);
    const std::string line = DecodeRequestLine(req, HostWireOrder());
    EXPECT_TRUE(Contains(line, OpcodeName(op)))
        << "opcode " << int(opi) << ": " << line;
    EXPECT_FALSE(Contains(line, "<truncated>"))
        << "opcode " << int(opi) << ": " << line;
  }
}

TEST(DecodeRequestTest, KnownBodiesRenderTheirFields) {
  // Spot-check a few decoded lines so the body decoders are provably
  // wired, not just non-crashing.
  const auto play = CanonicalRequest(Opcode::kPlaySamples);
  EXPECT_TRUE(Contains(DecodeRequestLine(play, HostWireOrder()), "nbytes=32"));
  const auto dial = CanonicalRequest(Opcode::kDialPhone);
  EXPECT_TRUE(Contains(DecodeRequestLine(dial, HostWireOrder()), "5551212"));
  const auto atom = CanonicalRequest(Opcode::kInternAtom);
  EXPECT_TRUE(Contains(DecodeRequestLine(atom, HostWireOrder()), "TORTURE"));
  const auto trace = CanonicalRequest(Opcode::kGetTrace);
  EXPECT_TRUE(Contains(DecodeRequestLine(trace, HostWireOrder()), "flags=0x0"));
}

TEST(DecodeRequestTest, TruncationAtEveryByteNeverCrashes) {
  for (uint8_t opi = kMinOpcode; opi <= kMaxOpcode; ++opi) {
    const auto req = CanonicalRequest(static_cast<Opcode>(opi));
    for (size_t cut = 0; cut < req.size(); ++cut) {
      const std::string line = DecodeRequestLine(
          std::span<const uint8_t>(req.data(), cut), HostWireOrder());
      EXPECT_FALSE(line.empty()) << "opcode " << int(opi) << " cut " << cut;
      if (cut < kRequestHeaderBytes) {
        EXPECT_TRUE(Contains(line, "<truncated header>"))
            << "opcode " << int(opi) << " cut " << cut << ": " << line;
      }
    }
  }
}

TEST(DecodeRequestTest, EverySingleByteCorruptionNeverCrashes) {
  for (uint8_t opi = kMinOpcode; opi <= kMaxOpcode; ++opi) {
    const auto req = CanonicalRequest(static_cast<Opcode>(opi));
    for (size_t at = 0; at < req.size(); ++at) {
      for (const uint8_t mask : {uint8_t{0xFF}, uint8_t{0x80}, uint8_t{0x01}}) {
        std::vector<uint8_t> bad = req;
        bad[at] ^= mask;
        const std::string line = DecodeRequestLine(bad, HostWireOrder());
        EXPECT_FALSE(line.empty())
            << "opcode " << int(opi) << " byte " << at << " mask " << int(mask);
      }
    }
  }
}

TEST(DecodeRequestTest, UnknownOpcodeIsLabelled) {
  WireWriter w;
  w.U8(200);  // far outside [kMinOpcode, kMaxOpcode]
  w.U8(0);
  w.U16(1);
  const std::string line = DecodeRequestLine(w.data(), HostWireOrder());
  EXPECT_TRUE(Contains(line, "<unknown>")) << line;
}

TEST(DecodeServerTest, ErrorReplyAndEventLinesDecode) {
  // Error unit.
  {
    ErrorPacket err;
    err.code = AfError::kBadValue;
    err.seq = 12;
    err.opcode = Opcode::kPlaySamples;
    err.value = 9;
    WireWriter w;
    err.Encode(w);
    const std::string line = DecodeServerLine(w.data(), HostWireOrder());
    EXPECT_TRUE(Contains(line, "Error")) << line;
    EXPECT_TRUE(Contains(line, "seq=12")) << line;
    EXPECT_TRUE(Contains(line, OpcodeName(Opcode::kPlaySamples))) << line;
  }
  // Reply unit with extra data (a trace snapshot is a handy real reply).
  {
    TraceWire t;
    t.host_now_us = 5;
    WireWriter w;
    t.Encode(w, 34);
    const std::string line = DecodeServerLine(w.data(), HostWireOrder());
    EXPECT_TRUE(Contains(line, "Reply seq=34")) << line;
    EXPECT_FALSE(Contains(line, "<truncated>")) << line;
    // The same unit cut mid-extra-data is flagged, not trusted.
    const std::string cut = DecodeServerLine(
        std::span<const uint8_t>(w.data().data(), kReplyBaseBytes + 2),
        HostWireOrder());
    EXPECT_TRUE(Contains(cut, "<truncated>")) << cut;
  }
  // Event unit.
  {
    AEvent ev;
    ev.type = EventType::kPhoneRing;
    ev.detail = 1;
    ev.device = 2;
    ev.dev_time = 8000;
    WireWriter w;
    ev.Encode(w);
    const std::string line = DecodeServerLine(w.data(), HostWireOrder());
    EXPECT_TRUE(Contains(line, "Event")) << line;
    EXPECT_TRUE(Contains(line, "dev=2")) << line;
  }
  // Unknown packet type.
  {
    std::vector<uint8_t> junk(kReplyBaseBytes, 0);
    junk[0] = 99;
    EXPECT_TRUE(Contains(DecodeServerLine(junk, HostWireOrder()), "<unknown packet"));
  }
  EXPECT_EQ(DecodeServerLine({}, HostWireOrder()), "<empty>");
}

TEST(DecodeSetupTest, SetupLinesRoundTrip) {
  SetupRequest setup;
  const auto bytes = setup.Encode();
  const std::string line = DecodeSetupRequestLine(bytes);
  EXPECT_TRUE(Contains(line, "Setup")) << line;
  EXPECT_FALSE(Contains(line, "<truncated>")) << line;
  for (size_t cut = 0; cut < SetupRequest::kFixedBytes; ++cut) {
    EXPECT_TRUE(Contains(
        DecodeSetupRequestLine(std::span<const uint8_t>(bytes.data(), cut)),
        "<truncated>"));
  }

  SetupReply reply;
  reply.success = true;
  reply.vendor = "decode-test";
  const auto reply_bytes = reply.Encode(HostWireOrder());
  const std::string rline = DecodeSetupReplyLine(reply_bytes, HostWireOrder());
  EXPECT_TRUE(Contains(rline, "SetupReply ok")) << rline;
  EXPECT_TRUE(Contains(rline, "decode-test")) << rline;
}

// --- StreamDecoder ----------------------------------------------------------

// Feeds `stream` to `dec` one byte at a time, collecting decoded lines.
std::vector<std::string> FeedByByte(StreamDecoder& dec,
                                    const std::vector<uint8_t>& stream) {
  std::vector<std::string> lines;
  const auto sink = [&](const std::string& line) { lines.push_back(line); };
  for (size_t i = 0; i < stream.size(); ++i) {
    dec.Feed(std::span<const uint8_t>(stream.data() + i, 1), sink);
  }
  return lines;
}

TEST(StreamDecoderTest, FramesAWholeConversationFedByteByByte) {
  SetupRequest setup;
  std::vector<uint8_t> stream = setup.Encode();
  size_t expected = 1;  // the setup itself
  for (uint8_t opi = kMinOpcode; opi <= kMaxOpcode; ++opi) {
    const auto req = CanonicalRequest(static_cast<Opcode>(opi));
    stream.insert(stream.end(), req.begin(), req.end());
    ++expected;
  }
  StreamDecoder dec(StreamDecoder::Dir::kClientToServer);
  const auto lines = FeedByByte(dec, stream);
  EXPECT_FALSE(dec.saw_error());
  EXPECT_EQ(dec.messages(), expected);
  ASSERT_EQ(lines.size(), expected);
  EXPECT_TRUE(Contains(lines[0], "Setup"));
  // The byte order was learned from the setup mark.
  EXPECT_TRUE(dec.have_order());
  EXPECT_EQ(dec.order(), setup.order);
  // No line may be a truncation artifact: framing found every boundary.
  for (const std::string& line : lines) {
    EXPECT_FALSE(Contains(line, "<truncated>")) << line;
  }
}

TEST(StreamDecoderTest, FramesServerDirectionUnits) {
  SetupReply reply;
  reply.success = true;
  std::vector<uint8_t> stream = reply.Encode(HostWireOrder());

  ErrorPacket err;
  err.seq = 2;
  WireWriter w;
  err.Encode(w);
  TraceWire trace;
  trace.Encode(w, 3);
  AEvent ev;
  ev.type = EventType::kPhoneDTMF;
  ev.Encode(w);
  stream.insert(stream.end(), w.data().begin(), w.data().end());

  StreamDecoder dec(StreamDecoder::Dir::kServerToClient);
  dec.SetOrder(HostWireOrder());
  const auto lines = FeedByByte(dec, stream);
  EXPECT_FALSE(dec.saw_error());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_TRUE(Contains(lines[0], "SetupReply ok")) << lines[0];
  EXPECT_TRUE(Contains(lines[1], "Error")) << lines[1];
  EXPECT_TRUE(Contains(lines[2], "Reply seq=3")) << lines[2];
  EXPECT_TRUE(Contains(lines[3], "Event")) << lines[3];
}

TEST(StreamDecoderTest, UndecodableStreamReportsOnceAndStops) {
  SetupRequest setup;
  std::vector<uint8_t> stream = setup.Encode();
  // A request announcing zero length can never frame; the decoder must
  // declare the stream dead rather than loop or crash.
  stream.insert(stream.end(), {5, 0, 0, 0});
  stream.insert(stream.end(), 64, 0xAA);  // junk after the breakage
  StreamDecoder dec(StreamDecoder::Dir::kClientToServer);
  const auto lines = FeedByByte(dec, stream);
  EXPECT_TRUE(dec.saw_error());
  EXPECT_EQ(dec.messages(), 1u);  // only the setup decoded
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(Contains(lines[1], "undecodable")) << lines[1];
}

}  // namespace
}  // namespace af
