// Server (DIA) behavior through the client library: setup, dispatch,
// errors, audio contexts, atoms/properties with change events, access
// control, and protocol-violation handling.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/audio_context.h"
#include "clients/server_runner.h"

namespace af {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerRunner::Config config;
    config.with_codec = true;
    config.with_phone = true;
    config.realtime = false;  // time frozen; fine for control-path tests
    runner_ = ServerRunner::Start(config);
    ASSERT_NE(runner_, nullptr);
    auto conn = runner_->ConnectInProcess();
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    conn_ = conn.take();
    // Collect protocol errors instead of exiting.
    conn_->SetErrorHandler(
        [this](AFAudioConn&, const ErrorPacket& error) { errors_.push_back(error); });
  }

  std::unique_ptr<ServerRunner> runner_;
  std::unique_ptr<AFAudioConn> conn_;
  std::vector<ErrorPacket> errors_;
};

TEST_F(ServerTest, SetupDescribesDevices) {
  ASSERT_EQ(conn_->devices().size(), 2u);
  EXPECT_EQ(conn_->devices()[0].type, DevType::kCodec);
  EXPECT_EQ(conn_->devices()[1].type, DevType::kPhone);
  EXPECT_EQ(conn_->devices()[1].inputs_from_phone, 1u);
  EXPECT_EQ(conn_->FindDefaultDevice()->index, 0u);
  EXPECT_EQ(conn_->FindDefaultPhoneDevice()->index, 1u);
  EXPECT_FALSE(conn_->vendor().empty());
}

TEST_F(ServerTest, GetTimeRoundTrip) {
  auto t = conn_->GetTime(0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value(), 0u);  // manual clock frozen at zero
  runner_->manual_clock()->Advance(12345);
  t = conn_->GetTime(0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value(), 12345u);
}

TEST_F(ServerTest, GetTimeBadDevice) {
  // Errors for awaited (round-trip) requests surface at the caller, not
  // the asynchronous error handler.
  auto t = conn_->GetTime(99);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), AfError::kBadDevice);
  conn_->Sync();
  EXPECT_TRUE(errors_.empty());
}

TEST_F(ServerTest, CreateAndFreeAC) {
  ACAttributes attrs;
  attrs.play_gain_db = -6;
  auto ac = conn_->CreateAC(0, kACPlayGain, attrs);
  ASSERT_TRUE(ac.ok());
  conn_->Sync();
  EXPECT_TRUE(errors_.empty());
  conn_->FreeAC(ac.value());
  conn_->Sync();
  EXPECT_TRUE(errors_.empty());
}

TEST_F(ServerTest, ACWithBadGainIsAcceptedButBadEncodingIsNot) {
  ACAttributes attrs;
  attrs.encoding = AEncodeType::kCelp1016;  // no conversion module
  conn_->CreateAC(0, kACEncodingType, attrs);
  conn_->Sync();
  ASSERT_EQ(errors_.size(), 1u);
  EXPECT_EQ(errors_[0].code, AfError::kBadMatch);
}

TEST_F(ServerTest, ChangeACAttributesValidatesOwnership) {
  ChangeACAttributesReq req;
  req.ac = 0xDEAD;  // nobody's AC
  conn_->QueueRequest(Opcode::kChangeACAttributes, req);
  conn_->Sync();
  ASSERT_EQ(errors_.size(), 1u);
  EXPECT_EQ(errors_[0].code, AfError::kBadAC);
}

TEST_F(ServerTest, SyncConnectionRoundTrips) {
  conn_->Sync();
  conn_->Sync();
  EXPECT_TRUE(errors_.empty());
}

TEST_F(ServerTest, NotImplementedRequests) {
  QueryExtensionReq req;
  req.name = "shm";
  conn_->QueueRequest(Opcode::kQueryExtension, req);
  conn_->Sync();
  ASSERT_EQ(errors_.size(), 1u);
  EXPECT_EQ(errors_[0].code, AfError::kNotImplemented);
}

TEST_F(ServerTest, DialPhoneIsObsolete) {
  DialPhoneReq req;
  req.device = 1;
  req.number = "5551212";
  conn_->QueueRequest(Opcode::kDialPhone, req);
  conn_->Sync();
  ASSERT_EQ(errors_.size(), 1u);
  EXPECT_EQ(errors_[0].code, AfError::kObsolete);
}

TEST_F(ServerTest, AtomsInternAndName) {
  auto atom = conn_->InternAtom("MY_NEW_ATOM");
  ASSERT_TRUE(atom.ok());
  EXPECT_GT(atom.value(), kLastBuiltinAtom);
  auto name = conn_->GetAtomName(atom.value());
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value(), "MY_NEW_ATOM");
  auto again = conn_->InternAtom("MY_NEW_ATOM", /*only_if_exists=*/true);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), atom.value());
  auto missing = conn_->InternAtom("NOPE", /*only_if_exists=*/true);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value(), kNoAtom);
}

TEST_F(ServerTest, PropertiesStoreAndNotify) {
  // A second client registers for property-change events.
  auto watcher_result = runner_->ConnectInProcess();
  ASSERT_TRUE(watcher_result.ok());
  auto watcher = watcher_result.take();
  watcher->SelectEvents(0, kPropertyChangeMask);
  watcher->Sync();

  const std::string number = "16175551212";
  conn_->ChangeProperty(0, kAtomLAST_NUMBER_DIALED, kAtomSTRING, 8, PropertyMode::kReplace,
                        std::span<const uint8_t>(
                            reinterpret_cast<const uint8_t*>(number.data()), number.size()));
  conn_->Sync();

  auto prop = conn_->GetProperty(0, kAtomLAST_NUMBER_DIALED);
  ASSERT_TRUE(prop.ok());
  EXPECT_EQ(prop.value().type, kAtomSTRING);
  EXPECT_EQ(std::string(prop.value().data.begin(), prop.value().data.end()), number);
  EXPECT_EQ(prop.value().bytes_after, 0u);

  auto list = conn_->ListProperties(0);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value(), std::vector<Atom>{kAtomLAST_NUMBER_DIALED});

  AEvent event;
  ASSERT_TRUE(watcher->NextEvent(&event).ok());
  EXPECT_EQ(event.type, EventType::kPropertyChange);
  EXPECT_EQ(event.w0, kAtomLAST_NUMBER_DIALED);
  EXPECT_EQ(event.w1, kPropertyNewValue);

  // Append mode and partial reads.
  conn_->ChangeProperty(0, kAtomLAST_NUMBER_DIALED, kAtomSTRING, 8, PropertyMode::kAppend,
                        std::span<const uint8_t>(
                            reinterpret_cast<const uint8_t*>(number.data()), 4));
  auto partial = conn_->GetProperty(0, kAtomLAST_NUMBER_DIALED, kAnyPropertyType, 1, 2);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial.value().data.size(), 8u);  // 2 long words
  EXPECT_GT(partial.value().bytes_after, 0u);

  conn_->DeleteProperty(0, kAtomLAST_NUMBER_DIALED);
  auto gone = conn_->GetProperty(0, kAtomLAST_NUMBER_DIALED);
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone.value().type, kNoAtom);
}

TEST_F(ServerTest, PropertyTypeMismatchReturnsMetadataOnly) {
  const uint8_t bytes[4] = {1, 2, 3, 4};
  conn_->ChangeProperty(0, kAtomCOPYRIGHT, kAtomSTRING, 8, PropertyMode::kReplace, bytes);
  auto wrong = conn_->GetProperty(0, kAtomCOPYRIGHT, kAtomINTEGER);
  ASSERT_TRUE(wrong.ok());
  EXPECT_EQ(wrong.value().type, kAtomSTRING);
  EXPECT_TRUE(wrong.value().data.empty());
  EXPECT_EQ(wrong.value().bytes_after, 4u);
}

TEST_F(ServerTest, AccessControlListEditing) {
  const uint8_t addr[4] = {10, 1, 2, 3};
  conn_->AddHost(0, addr);
  auto hosts = conn_->ListHosts();
  ASSERT_TRUE(hosts.ok());
  EXPECT_EQ(hosts.value().enabled, 0u);
  ASSERT_EQ(hosts.value().hosts.size(), 1u);
  EXPECT_EQ(hosts.value().hosts[0].address, (std::vector<uint8_t>{10, 1, 2, 3}));

  conn_->SetAccessControl(true);
  hosts = conn_->ListHosts();
  ASSERT_TRUE(hosts.ok());
  EXPECT_EQ(hosts.value().enabled, 1u);

  conn_->RemoveHost(0, addr);
  conn_->SetAccessControl(false);
  hosts = conn_->ListHosts();
  ASSERT_TRUE(hosts.ok());
  EXPECT_TRUE(hosts.value().hosts.empty());
}

TEST_F(ServerTest, GainQueriesAndLimits) {
  conn_->SetOutputGain(0, 10);
  auto gain = conn_->QueryOutputGain(0);
  ASSERT_TRUE(gain.ok());
  EXPECT_EQ(gain.value().gain_db, 10);
  EXPECT_EQ(gain.value().min_db, kGainMinDb);
  EXPECT_EQ(gain.value().max_db, kGainMaxDb);

  conn_->SetInputGain(0, 99);  // out of range
  conn_->Sync();
  ASSERT_EQ(errors_.size(), 1u);
  EXPECT_EQ(errors_[0].code, AfError::kBadValue);
  auto in_gain = conn_->QueryInputGain(0);
  ASSERT_TRUE(in_gain.ok());
  EXPECT_EQ(in_gain.value().gain_db, 0);
}

TEST_F(ServerTest, TelephonyOnNonPhoneDeviceIsBadMatch) {
  conn_->HookSwitch(0, true);
  conn_->Sync();
  ASSERT_EQ(errors_.size(), 1u);
  EXPECT_EQ(errors_[0].code, AfError::kBadMatch);
}

TEST_F(ServerTest, QueryPhoneWorksOnPhoneDevice) {
  auto phone = conn_->QueryPhone(1);
  ASSERT_TRUE(phone.ok());
  EXPECT_EQ(phone.value().off_hook, 0u);
  conn_->HookSwitch(1, true);
  phone = conn_->QueryPhone(1);
  ASSERT_TRUE(phone.ok());
  EXPECT_EQ(phone.value().off_hook, 1u);
}

TEST_F(ServerTest, MultipleClientsCoexist) {
  auto second_result = runner_->ConnectInProcess();
  ASSERT_TRUE(second_result.ok());
  auto second = second_result.take();
  auto t1 = conn_->GetTime(0);
  auto t2 = second->GetTime(0);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t1.value(), t2.value());
}

TEST_F(ServerTest, MalformedRequestClosesConnection) {
  auto victim_result = runner_->ConnectInProcess();
  ASSERT_TRUE(victim_result.ok());
  auto victim = victim_result.take();
  bool io_error = false;
  victim->SetIOErrorHandler([&io_error](AFAudioConn&) { io_error = true; });
  // A zero-length request header is a protocol violation.
  WireWriter& out = victim->out_for_test();
  out.U8(static_cast<uint8_t>(Opcode::kNoOperation));
  out.U8(0);
  out.U16(0);  // length 0: malformed
  victim->Flush();
  // The server must drop the victim but keep serving others.
  AEvent dummy;
  victim->NextEvent(&dummy);  // returns via IO error
  EXPECT_TRUE(io_error);
  auto t = conn_->GetTime(0);
  EXPECT_TRUE(t.ok());
}

TEST_F(ServerTest, BacklogBeyondFairnessCapIsServiced) {
  // Regression: a burst larger than max_requests_per_sweep used to strand
  // the tail of the burst in the input buffer forever, because poll never
  // fires again for an already-drained socket.
  const int burst = runner_->server().options().max_requests_per_sweep * 4;
  for (int i = 0; i < burst; ++i) {
    conn_->NoOp();
  }
  conn_->Sync();  // the reply can only arrive if the whole burst drains
  EXPECT_TRUE(errors_.empty());
}

TEST_F(ServerTest, OppositeEndianClientIsServed) {
  // The library always speaks host order; forge a big-endian client on the
  // wire to exercise the server's swap path (on a little-endian host).
  auto pair = CreateStreamPair();
  ASSERT_TRUE(pair.ok());
  auto& [client_end, server_end] = pair.value();
  runner_->server().AdoptClient(std::move(server_end));

  const WireOrder order = HostIsLittleEndian() ? WireOrder::kBig : WireOrder::kLittle;
  SetupRequest setup;
  setup.order = order;
  const auto setup_bytes = setup.Encode();
  ASSERT_TRUE(client_end.WriteAll(setup_bytes.data(), setup_bytes.size()).ok());

  uint8_t fixed[SetupReply::kFixedBytes];
  ASSERT_TRUE(client_end.ReadAll(fixed, sizeof(fixed)).ok());
  bool success = false;
  uint32_t additional = 0;
  ASSERT_TRUE(SetupReply::DecodeFixed(fixed, order, &success, &additional));
  ASSERT_TRUE(success);
  std::vector<uint8_t> variable(additional * 4);
  ASSERT_TRUE(client_end.ReadAll(variable.data(), variable.size()).ok());
  SetupReply reply;
  ASSERT_TRUE(SetupReply::DecodeVariable(variable, order, success, &reply));
  ASSERT_EQ(reply.devices.size(), 2u);
  EXPECT_EQ(reply.devices[0].play_sample_rate, 8000u);

  // A GetTime round trip in the foreign order.
  runner_->manual_clock()->Set(24680);
  WireWriter w(order);
  GetTimeReq req;
  req.device = 0;
  const size_t header = BeginRequest(w, Opcode::kGetTime);
  req.Encode(w);
  EndRequest(w, header);
  ASSERT_TRUE(client_end.WriteAll(w.data().data(), w.size()).ok());

  uint8_t unit[kReplyBaseBytes];
  ASSERT_TRUE(client_end.ReadAll(unit, sizeof(unit)).ok());
  GetTimeReply time_reply;
  ASSERT_TRUE(GetTimeReply::Decode(unit, order, &time_reply));
  EXPECT_EQ(time_reply.time, 24680u);
}

TEST_F(ServerTest, SuspendedClientDoesNotStallOthers) {
  // A blocking record into the future suspends only its own connection;
  // a second client keeps getting service meanwhile (Section 7.1).
  auto blocked_result = runner_->ConnectInProcess();
  ASSERT_TRUE(blocked_result.ok());
  auto blocked = blocked_result.take();
  auto ac = blocked->CreateAC(0, 0, ACAttributes{});
  ASSERT_TRUE(ac.ok());

  std::atomic<bool> record_done{false};
  std::thread blocker([&] {
    std::vector<uint8_t> buf(4000);  // 0.5 s into the future
    ac.value()->RecordSamples(0, buf, /*block=*/true);
    record_done.store(true);
  });

  // Give the record request time to reach the server and suspend.
  SleepMicros(50000);
  EXPECT_FALSE(record_done.load());
  // Other clients stay fully responsive.
  for (int i = 0; i < 50; ++i) {
    auto t = conn_->GetTime(0);
    ASSERT_TRUE(t.ok());
  }
  // Now let device time reach the requested range: the suspended request
  // resumes and completes.
  runner_->manual_clock()->Advance(8000);
  blocker.join();
  EXPECT_TRUE(record_done.load());
}

TEST_F(ServerTest, StatsCount) {
  conn_->NoOp();
  conn_->Sync();
  runner_->RunOnLoop([this] {
    EXPECT_GT(runner_->server().stats().requests_dispatched, 0u);
    EXPECT_EQ(runner_->server().client_count(), 1u);
  });
}

}  // namespace
}  // namespace af
