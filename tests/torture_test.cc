// Protocol torture: the server must survive a hostile network.
//
// Truncation sweep: every request opcode, cut after every byte (including
// during the setup handshake); the server must tear the broken client down
// and keep serving a bystander. Seeded random fault walk: a raw client
// whose transport randomly shortens, stalls, delays, corrupts, cuts and
// resets, round after round; each round logs its fault trace so a failure
// reproduces exactly from the printed seed (AF_TORTURE_SEED replays one
// round, AF_TORTURE_ROUNDS tunes the soak depth).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "client/audio_context.h"
#include "clients/server_runner.h"
#include "torture_util.h"
#include "transport/fault_stream.h"

namespace af {
namespace {

using torture::CanonicalRequest;

class TortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerRunner::Config config;
    config.with_codec = true;
    config.with_phone = true;  // so telephony opcodes hit a real device
    config.realtime = false;
    runner_ = ServerRunner::Start(config);
    ASSERT_NE(runner_, nullptr);
    auto conn = runner_->ConnectInProcess();
    ASSERT_TRUE(conn.ok());
    bystander_ = conn.take();
  }

  // The bystander must still get service after every act of hostility.
  void ExpectServerAlive() {
    auto t = bystander_->GetTime(0);
    EXPECT_TRUE(t.ok());
  }

  // Adopts the server side of a fresh socketpair behind `faults` and
  // returns the raw client side.
  FdStream HostileConnection(std::shared_ptr<FaultSchedule> faults) {
    auto pair = CreateStreamPair();
    EXPECT_TRUE(pair.ok());
    runner_->server().AdoptClient(std::move(pair.value().second), std::move(faults));
    return std::move(pair.value().first);
  }

  std::unique_ptr<ServerRunner> runner_;
  std::unique_ptr<AFAudioConn> bystander_;
};

TEST_F(TortureTest, TruncationSweepEveryOpcode) {
  SetupRequest setup;
  const auto setup_bytes = setup.Encode();
  for (uint8_t op = kMinOpcode; op <= kMaxOpcode; ++op) {
    const auto req = CanonicalRequest(static_cast<Opcode>(op));
    ASSERT_GE(req.size(), kRequestHeaderBytes) << "opcode " << int(op);
    // cut == req.size() is the complete-request-then-EOF case; everything
    // below it is a mid-request truncation.
    for (size_t cut = 0; cut <= req.size(); ++cut) {
      auto faults = std::make_shared<FaultSchedule>();
      faults->CutReadAt(setup_bytes.size() + cut);
      FdStream raw = HostileConnection(faults);
      // Both setup and request go out in full; the server-side FaultStream
      // delivers the setup plus exactly `cut` bytes of the request, then a
      // clean EOF. (The setup reply is never read: liveness, not the
      // handshake, is the assertion here.) A sentinel byte rides along so
      // the kernel buffer is never drained exactly at the cut - the
      // socket stays poll-readable until the injected EOF is observed.
      // One write for the lot: the server may tear the connection down the
      // moment it sees the cut, so a second write could hit EPIPE.
      std::vector<uint8_t> wire(setup_bytes);
      wire.insert(wire.end(), req.begin(), req.end());
      wire.push_back(0);  // sentinel past the cut
      ASSERT_TRUE(raw.WriteAll(wire.data(), wire.size()).ok());
      const size_t clients = torture::DrainToClientCount(*runner_, 1);
      ASSERT_EQ(clients, 1u) << "opcode " << int(op) << " cut at byte " << cut
                             << "; trace: " << faults->TraceString();
    }
    ExpectServerAlive();
  }
}

TEST_F(TortureTest, TruncationSweepSetupHandshake) {
  SetupRequest setup;
  const auto setup_bytes = setup.Encode();
  for (size_t cut = 0; cut < setup_bytes.size(); ++cut) {
    auto faults = std::make_shared<FaultSchedule>();
    faults->CutReadAt(cut);
    FdStream raw = HostileConnection(faults);
    ASSERT_TRUE(raw.WriteAll(setup_bytes.data(), setup_bytes.size()).ok());
    const size_t clients = torture::DrainToClientCount(*runner_, 1);
    ASSERT_EQ(clients, 1u) << "setup cut at byte " << cut;
  }
  ExpectServerAlive();
}

TEST_F(TortureTest, ResetMidRequestLeavesBystanderUnharmed) {
  SetupRequest setup;
  const auto setup_bytes = setup.Encode();
  const auto req = CanonicalRequest(Opcode::kPlaySamples);
  for (const size_t at : {size_t{0}, size_t{2}, kRequestHeaderBytes, req.size() / 2}) {
    auto faults = std::make_shared<FaultSchedule>();
    faults->ResetReadAt(setup_bytes.size() + at);
    FdStream raw = HostileConnection(faults);
    ASSERT_TRUE(raw.WriteAll(setup_bytes.data(), setup_bytes.size()).ok());
    ASSERT_TRUE(raw.WriteAll(req.data(), req.size()).ok());
    const size_t clients = torture::DrainToClientCount(*runner_, 1);
    ASSERT_EQ(clients, 1u) << "reset at request byte " << at;
    ExpectServerAlive();
  }
}

TEST_F(TortureTest, SeededRandomFaultWalkSoak) {
  const int rounds = torture::EnvInt("AF_TORTURE_ROUNDS", 24);
  const uint64_t base_seed =
      static_cast<uint64_t>(torture::EnvInt("AF_TORTURE_SEED", 1993));

  SetupRequest setup;
  const auto setup_bytes = setup.Encode();
  // A burst of benign requests; the schedule mangles them in transit, so
  // the server sees shortened, stalled, delayed, corrupted, cut and reset
  // variants of real traffic.
  std::vector<uint8_t> burst;
  for (int rep = 0; rep < 12; ++rep) {
    for (const Opcode op :
         {Opcode::kGetTime, Opcode::kNoOperation, Opcode::kInternAtom,
          Opcode::kSyncConnection, Opcode::kGetProperty, Opcode::kListProperties,
          Opcode::kListHosts, Opcode::kQueryInputGain}) {
      const auto req = CanonicalRequest(op);
      burst.insert(burst.end(), req.begin(), req.end());
    }
  }

  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(round);
    FaultSchedule::RandomProfile profile;
    profile.p_corrupt = 0.05;
    profile.p_cut = 0.02;
    profile.p_reset = 0.01;
    auto faults = FaultSchedule::Random(seed, profile);
    // Injected latency advances the manual device clock instead of
    // sleeping: the walk stays deterministic and the soak stays fast.
    auto clock = runner_->manual_clock();
    faults->SetLatencyHook([clock](uint64_t usec) {
      clock->Advance(usec * clock->SampleRate() / 1000000 + 1);
    });

    FdStream raw = HostileConnection(faults);
    // Fire-and-forget: replies are never read (they pile into the
    // socketpair buffer or hit EPIPE after the close); transport errors on
    // this side are expected once the schedule cuts or resets the stream.
    (void)raw.WriteAll(setup_bytes.data(), setup_bytes.size());
    (void)raw.WriteAll(burst.data(), burst.size());
    raw.Close();

    const size_t clients = torture::DrainToClientCount(*runner_, 1);
    EXPECT_EQ(clients, 1u) << "replay with AF_TORTURE_SEED=" << seed
                           << " AF_TORTURE_ROUNDS=1; trace: "
                           << faults->TraceString();
    ExpectServerAlive();
  }
}

TEST_F(TortureTest, FloodOfGiantRequestHeadersIsBounded) {
  // A client announcing maximum-length requests and streaming bodies
  // forever must not make the server buffer without bound: the input
  // high-water mark caps what one sweep reads, and teardown on close must
  // still be prompt.
  SetupRequest setup;
  const auto setup_bytes = setup.Encode();
  FdStream raw = HostileConnection(nullptr);
  ASSERT_TRUE(raw.WriteAll(setup_bytes.data(), setup_bytes.size()).ok());
  WireWriter w;
  w.U8(static_cast<uint8_t>(Opcode::kPlaySamples));
  w.U8(0);
  w.U16(0xFFFF);  // 256 KiB request, body never fully sent
  std::vector<uint8_t> chunk(4096, 0xAB);
  ASSERT_TRUE(raw.WriteAll(w.data().data(), w.size()).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(raw.WriteAll(chunk.data(), chunk.size()).ok());
  }
  raw.Close();
  const size_t clients = torture::DrainToClientCount(*runner_, 1);
  EXPECT_EQ(clients, 1u);
  ExpectServerAlive();
}

}  // namespace
}  // namespace af
