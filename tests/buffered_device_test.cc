// The buffered audio device: the paper's Section 7.2 buffering design
// exercised directly against a manually clocked CODEC device - update
// regions, write-through, lazy silence fill, mix vs preempt, record
// gating, past/future clipping, blocking outcomes, conversion modules,
// and the HiFi mono channel views.
#include <gtest/gtest.h>

#include "devices/codec_device.h"
#include "devices/hifi_device.h"
#include "dsp/g711.h"

namespace af {
namespace {

class CodecDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_shared<ManualSampleClock>(8000);
    dev_ = CodecDevice::Create(clock_);
    sink_ = std::make_shared<CaptureSink>();
    source_ = std::make_shared<BufferSource>(1 << 16, 1, kMulawSilence);
    dev_->sim().SetSink(sink_);
    dev_->sim().SetSource(source_);
    dev_->Update();  // establish time 0 and prime the hardware window
    MakeAC(&ac_, ACAttributes{});
  }

  void MakeAC(ServerAC* ac, ACAttributes attrs) {
    if (attrs.channels == 0 || attrs.channels == 1) {
      attrs.channels = dev_->desc().play_nchannels;
    }
    ac->id = 1;
    ac->device = dev_.get();
    ac->attrs = attrs;
    ASSERT_TRUE(dev_->MakeACOps(attrs, &ac->ops).ok());
  }

  // Advances the simulated clock in update-period steps, running the
  // device update after each, as the server's task would.
  void RunFor(uint64_t samples) {
    const uint64_t step = 256;
    uint64_t advanced = 0;
    while (advanced < samples) {
      const uint64_t n = std::min(step, samples - advanced);
      clock_->Advance(n);
      dev_->Update();
      advanced += n;
    }
  }

  std::shared_ptr<ManualSampleClock> clock_;
  std::unique_ptr<CodecDevice> dev_;
  std::shared_ptr<CaptureSink> sink_;
  std::shared_ptr<BufferSource> source_;
  ServerAC ac_;
};

TEST_F(CodecDeviceTest, DescExportsTrueBufferSizes) {
  EXPECT_EQ(dev_->desc().play_buffer_samples, 32768u);  // NextPow2(4 * 8000)
  EXPECT_NEAR(dev_->desc().BufferSeconds(), 4.096, 0.001);
}

TEST_F(CodecDeviceTest, TimeFollowsManualClockThroughCounterWrap) {
  EXPECT_EQ(dev_->GetTime(), 0u);
  clock_->Advance(1000);
  EXPECT_EQ(dev_->GetTime(), 1000u);
  // Cross the 24-bit counter boundary in safe steps; 32-bit device time
  // must keep counting.
  while (clock_->Now() < (1u << 24) + 5000) {
    clock_->Advance(1u << 20);
    dev_->GetTime();
  }
  EXPECT_EQ(dev_->GetTime(), clock_->Now());
}

TEST_F(CodecDeviceTest, PlayIsHeardAtTheScheduledTime) {
  std::vector<uint8_t> pattern(2000);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = MulawFromLinear16(static_cast<int16_t>((i % 50) * 100));
  }
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(ac_, 4000, pattern, false, &outcome).ok());
  EXPECT_FALSE(outcome.would_block);
  EXPECT_EQ(outcome.consumed_client_bytes, pattern.size());

  RunFor(8000);
  EXPECT_EQ(sink_->Segment(4000, pattern.size()), pattern);
  // Around the scheduled window the output is silence.
  EXPECT_EQ(sink_->Segment(3000, 500), std::vector<uint8_t>(500, kMulawSilence));
  EXPECT_EQ(sink_->Segment(6200, 500), std::vector<uint8_t>(500, kMulawSilence));
}

TEST_F(CodecDeviceTest, ContiguousStreamHasNoSeams) {
  // Feed blocks back to back while time advances; the sink must hear one
  // continuous pattern.
  std::vector<uint8_t> all;
  ATime t = 1000;
  for (int block = 0; block < 20; ++block) {
    std::vector<uint8_t> data(800);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>((block * 800 + i) % 251);
    }
    PlayOutcome outcome;
    ASSERT_TRUE(dev_->Play(ac_, t, data, false, &outcome).ok());
    all.insert(all.end(), data.begin(), data.end());
    t += static_cast<ATime>(data.size());
    RunFor(800);
  }
  RunFor(4000);
  EXPECT_EQ(sink_->Segment(1000, all.size()), all);
}

TEST_F(CodecDeviceTest, WriteThroughPatchesTheNearFuture) {
  // Data scheduled inside the region already pushed to the hardware
  // (before timeNextUpdate) must still be heard.
  const ATime now = dev_->GetTime();
  std::vector<uint8_t> data(100, 0x34);
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(ac_, now + 50, data, false, &outcome).ok());
  RunFor(1500);
  EXPECT_EQ(sink_->Segment(now + 50, data.size()), data);
}

TEST_F(CodecDeviceTest, PastIsDiscardedAndPartialPastClipped) {
  RunFor(8000);  // now = 8000
  std::vector<uint8_t> data(1000, 0x11);
  PlayOutcome outcome;
  // Entirely in the past: consumed and dropped.
  ASSERT_TRUE(dev_->Play(ac_, 2000, data, false, &outcome).ok());
  EXPECT_EQ(outcome.consumed_client_bytes, data.size());
  // Straddling now: the tail plays.
  const ATime now = dev_->GetTime();
  ASSERT_TRUE(dev_->Play(ac_, now - 500, data, false, &outcome).ok());
  RunFor(2000);
  const auto heard = sink_->Segment(now, 500);
  EXPECT_EQ(heard, std::vector<uint8_t>(500, 0x11));
}

TEST_F(CodecDeviceTest, MixingTwoClients) {
  ServerAC ac2;
  MakeAC(&ac2, ACAttributes{});
  const uint8_t a = MulawFromLinear16(6000);
  const uint8_t b = MulawFromLinear16(3000);
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(ac_, 2000, std::vector<uint8_t>(400, a), false, &outcome).ok());
  ASSERT_TRUE(dev_->Play(ac2, 2000, std::vector<uint8_t>(400, b), false, &outcome).ok());
  RunFor(4000);
  const auto heard = sink_->Segment(2000, 400);
  ASSERT_EQ(heard.size(), 400u);
  EXPECT_NEAR(MulawToLinear16(heard[10]), 9000, 400);
}

TEST_F(CodecDeviceTest, PreemptOverwritesMix) {
  ServerAC preempting;
  ACAttributes attrs;
  attrs.preempt = 1;
  MakeAC(&preempting, attrs);
  const uint8_t quiet = MulawFromLinear16(2000);
  const uint8_t urgent = MulawFromLinear16(12000);
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(ac_, 2000, std::vector<uint8_t>(400, quiet), false, &outcome).ok());
  ASSERT_TRUE(
      dev_->Play(preempting, 2000, std::vector<uint8_t>(400, urgent), false, &outcome).ok());
  RunFor(4000);
  const auto heard = sink_->Segment(2000, 400);
  EXPECT_NEAR(MulawToLinear16(heard[100]), 12000, 400);  // not 14000
}

TEST_F(CodecDeviceTest, PlayGainIsAppliedBeforeMixing) {
  ServerAC quiet_ac;
  ACAttributes attrs;
  attrs.play_gain_db = -12;
  MakeAC(&quiet_ac, attrs);
  const uint8_t loud = MulawFromLinear16(16000);
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(quiet_ac, 2000, std::vector<uint8_t>(400, loud), false, &outcome).ok());
  RunFor(4000);
  const auto heard = sink_->Segment(2000, 400);
  EXPECT_NEAR(MulawToLinear16(heard[100]), 4000, 300);
}

TEST_F(CodecDeviceTest, GapBetweenRequestsIsSilence) {
  // Lazy silence fill: two bursts with a gap; stale ring content between
  // them must never be heard.
  std::vector<uint8_t> burst(500, 0x27);
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(ac_, 1000, burst, false, &outcome).ok());
  ASSERT_TRUE(dev_->Play(ac_, 3000, burst, false, &outcome).ok());
  RunFor(6000);
  EXPECT_EQ(sink_->Segment(1000, 500), burst);
  EXPECT_EQ(sink_->Segment(1500, 1500), std::vector<uint8_t>(1500, kMulawSilence));
  EXPECT_EQ(sink_->Segment(3000, 500), burst);
}

TEST_F(CodecDeviceTest, StaleRingDataNeverReplays) {
  // Play a full pattern, let more than a whole server buffer of time pass
  // with no writes, then listen: only silence may come out even though the
  // ring slots still hold the old bytes.
  std::vector<uint8_t> pattern(4000, 0x61);
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(ac_, 500, pattern, false, &outcome).ok());
  RunFor(40000);  // more than the 32768-frame server buffer
  sink_->Clear();
  RunFor(8000);
  const auto& heard = sink_->data();
  for (uint8_t v : heard) {
    ASSERT_EQ(v, kMulawSilence);
  }
}

TEST_F(CodecDeviceTest, FarFutureBlocksWithPartialWrite) {
  const ATime now = dev_->GetTime();
  const size_t window = dev_->play_buffer().nframes();
  std::vector<uint8_t> big(window + 5000, 0x15);
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(ac_, now + 100, big, false, &outcome).ok());
  EXPECT_TRUE(outcome.would_block);
  EXPECT_GT(outcome.consumed_client_bytes, 0u);
  EXPECT_LT(outcome.consumed_client_bytes, big.size());
  EXPECT_TRUE(TimeAfter(outcome.resume_time, now));
}

TEST_F(CodecDeviceTest, EntirelyBeyondWindowBlocksWithNothingWritten) {
  const ATime now = dev_->GetTime();
  std::vector<uint8_t> data(100, 0x15);
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(ac_, now + 40000, data, false, &outcome).ok());
  EXPECT_TRUE(outcome.would_block);
  EXPECT_EQ(outcome.consumed_client_bytes, 0u);
}

// --- record side -----------------------------------------------------------

TEST_F(CodecDeviceTest, RecordReturnsWhatTheSourceSaid) {
  std::vector<uint8_t> spoken(2000);
  for (size_t i = 0; i < spoken.size(); ++i) {
    spoken[i] = static_cast<uint8_t>(i % 253);
  }
  source_->PutAt(1000, spoken);
  RunFor(4000);  // recording gated on after the first Record marks the AC

  std::span<const uint8_t> out;
  RecordOutcome outcome;
  ASSERT_TRUE(dev_->Record(ac_, 1000, 2000, false, true, &out, &outcome).ok());
  // First record just gated recording on; the data arrived while gating
  // was off, within the hardware ring window it is still recoverable.
  // Re-run with fresh audio now that the context records.
  source_->PutAt(6000, spoken);
  RunFor(6000);
  ASSERT_TRUE(dev_->Record(ac_, 6000, 2000, false, true, &out, &outcome).ok());
  EXPECT_EQ(outcome.returned_bytes, 2000u);
  EXPECT_EQ(std::vector<uint8_t>(out.begin(), out.end()), spoken);
}

TEST_F(CodecDeviceTest, RecordFutureBlocksOrClips) {
  dev_->AddRecordRef();
  RunFor(4000);
  const ATime now = dev_->GetTime();
  std::span<const uint8_t> out;
  RecordOutcome outcome;
  // Blocking request into the future reports when it will be ready.
  ASSERT_TRUE(dev_->Record(ac_, now - 100, 1000, false, false, &out, &outcome).ok());
  EXPECT_TRUE(outcome.would_block);
  EXPECT_EQ(outcome.ready_time, now - 100 + 1000);
  // Non-blocking request returns only the available part.
  ASSERT_TRUE(dev_->Record(ac_, now - 100, 1000, false, true, &out, &outcome).ok());
  EXPECT_EQ(outcome.returned_bytes, 100u);
  // Non-blocking entirely in the future returns nothing.
  ASSERT_TRUE(dev_->Record(ac_, now + 500, 1000, false, true, &out, &outcome).ok());
  EXPECT_EQ(outcome.returned_bytes, 0u);
}

TEST_F(CodecDeviceTest, AncientPastIsSilence) {
  dev_->AddRecordRef();
  RunFor(70000);  // well past one server buffer
  const ATime now = dev_->GetTime();
  std::span<const uint8_t> out;
  RecordOutcome outcome;
  const ATime ancient = now - dev_->rec_buffer().nframes() - 5000;
  ASSERT_TRUE(dev_->Record(ac_, ancient, 1000, false, true, &out, &outcome).ok());
  EXPECT_EQ(std::vector<uint8_t>(out.begin(), out.end()),
            std::vector<uint8_t>(1000, kMulawSilence));
}

TEST_F(CodecDeviceTest, RecordRefCountGatesUpdates) {
  EXPECT_EQ(dev_->rec_ref_count(), 0);
  std::span<const uint8_t> out;
  RecordOutcome outcome;
  ASSERT_TRUE(dev_->Record(ac_, 0, 10, false, true, &out, &outcome).ok());
  EXPECT_EQ(dev_->rec_ref_count(), 1);
  EXPECT_TRUE(ac_.recording);
  // A second record under the same context does not double-count.
  ASSERT_TRUE(dev_->Record(ac_, 0, 10, false, true, &out, &outcome).ok());
  EXPECT_EQ(dev_->rec_ref_count(), 1);
  dev_->ReleaseRecordRef();
  EXPECT_EQ(dev_->rec_ref_count(), 0);
}

// --- device time wrap ---------------------------------------------------------

// Drives the sample clock across the 2^32 device-time wrap and checks that
// play and record behave exactly as they do elsewhere on the circle: the
// scheduled audio is heard, the recorded audio comes back, and the health
// counters show no underrun or overrun invented by the wrap itself.
// SeedTimeForTest puts the device just below the wrap so the test does not
// need to stream 2^32 real samples.
TEST(CodecDeviceWrapTest, PlayAndRecordAcrossTimeWrap) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  auto dev = CodecDevice::Create(clock);
  auto sink = std::make_shared<CaptureSink>();
  auto source = std::make_shared<BufferSource>(1 << 16, 1, kMulawSilence);
  dev->sim().SetSink(sink);
  dev->sim().SetSource(source);

  // Put both timelines just below the wrap: the raw sample clock drives
  // the simulated hardware, SeedTimeForTest aligns the device's 32-bit
  // time registers with it (they agree modulo 2^32 from here on).
  const ATime seed = 0xFFFFE000u;  // 8192 samples before the wrap
  clock->Advance(seed);
  dev->SeedTimeForTest(seed);
  dev->Update();
  ASSERT_EQ(dev->GetTime(), seed);
  dev->AddRecordRef();  // record updates run from the start: no gated-off gap

  ServerAC ac;
  ac.id = 1;
  ac.device = dev.get();
  ACAttributes attrs;
  attrs.channels = dev->desc().play_nchannels;
  ac.attrs = attrs;
  ASSERT_TRUE(dev->MakeACOps(attrs, &ac.ops).ok());

  // Schedule 0x2000 samples starting 0x1000 before the wrap: the second
  // half lands at device times 0x0000..0x0FFF.
  const ATime play_at = 0xFFFFF000u;
  std::vector<uint8_t> pattern(0x2000);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i % 251);
  }
  PlayOutcome outcome;
  ASSERT_TRUE(dev->Play(ac, play_at, pattern, false, &outcome).ok());
  EXPECT_FALSE(outcome.would_block);
  EXPECT_EQ(outcome.consumed_client_bytes, pattern.size());

  // The microphone "speaks" across the same boundary.
  std::vector<uint8_t> spoken(0x2000);
  for (size_t i = 0; i < spoken.size(); ++i) {
    spoken[i] = static_cast<uint8_t>((i * 7) % 253);
  }
  source->PutAt(play_at, spoken);

  // Cross the wrap in update-period steps (seed + 0x6000 wraps to 0x4000).
  for (uint64_t advanced = 0; advanced < 0x6000; advanced += 256) {
    clock->Advance(256);
    dev->Update();
  }
  EXPECT_EQ(dev->GetTime(), seed + 0x6000u);
  EXPECT_TRUE(TimeAfter(dev->GetTime(), seed));

  // The playback straddling the wrap came out intact and on time.
  EXPECT_EQ(sink->Segment(play_at, pattern.size()), pattern);
  // And the boundary itself is seamless: the two bytes around time 0.
  const auto boundary = sink->Segment(0xFFFFFFFFu, 2);
  ASSERT_EQ(boundary.size(), 2u);
  EXPECT_EQ(boundary[0], pattern[0x0FFF]);
  EXPECT_EQ(boundary[1], pattern[0x1000]);

  // The recording straddling the wrap reads back exactly.
  std::span<const uint8_t> out;
  RecordOutcome rec_outcome;
  ASSERT_TRUE(dev->Record(ac, play_at, spoken.size(), false, true, &out, &rec_outcome).ok());
  EXPECT_EQ(rec_outcome.returned_bytes, spoken.size());
  EXPECT_EQ(std::vector<uint8_t>(out.begin(), out.end()), spoken);

  // The wrap did not masquerade as a starved or overrun device.
  EXPECT_EQ(dev->metrics().play_underruns.Value(), 0u);
  EXPECT_EQ(dev->metrics().play_underrun_samples.Value(), 0u);
  EXPECT_EQ(dev->metrics().record_overruns.Value(), 0u);
  EXPECT_EQ(dev->metrics().record_overrun_frames.Value(), 0u);
  EXPECT_GT(dev->metrics().updates.Value(), 0u);
}

// --- conversion modules -------------------------------------------------------

TEST_F(CodecDeviceTest, Lin16ClientOnMulawDevice) {
  ServerAC lin_ac;
  ACAttributes attrs;
  attrs.encoding = AEncodeType::kLin16;
  attrs.channels = 1;
  MakeAC(&lin_ac, attrs);

  std::vector<int16_t> linear(500, 7000);
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(lin_ac, 2000,
                         std::span<const uint8_t>(
                             reinterpret_cast<const uint8_t*>(linear.data()), 1000),
                         !HostIsLittleEndian() ? true : false, &outcome)
                  .ok());
  RunFor(4000);
  const auto heard = sink_->Segment(2000, 500);
  ASSERT_EQ(heard.size(), 500u);
  EXPECT_NEAR(MulawToLinear16(heard[100]), 7000, 200);
}

TEST_F(CodecDeviceTest, AlawClientOnMulawDevice) {
  ServerAC alaw_ac;
  ACAttributes attrs;
  attrs.encoding = AEncodeType::kAlaw;
  attrs.channels = 1;
  MakeAC(&alaw_ac, attrs);

  const uint8_t alaw = AlawFromLinear16(9000);
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(alaw_ac, 2000, std::vector<uint8_t>(300, alaw), false, &outcome).ok());
  RunFor(4000);
  const auto heard = sink_->Segment(2000, 300);
  EXPECT_NEAR(MulawToLinear16(heard[50]), 9000, 600);
}

TEST_F(CodecDeviceTest, UnsupportedEncodingIsBadMatch) {
  ACOps ops;
  ACAttributes attrs;
  attrs.encoding = AEncodeType::kCelp1016;
  attrs.channels = 1;
  EXPECT_EQ(dev_->MakeACOps(attrs, &ops).code(), AfError::kBadMatch);
}

// --- HiFi stereo + mono views ----------------------------------------------------

class HiFiDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_shared<ManualSampleClock>(48000);
    dev_ = HiFiDevice::Create(clock_);
    sink_ = std::make_shared<CaptureSink>(64u << 20);
    dev_->sim().SetSink(sink_);
    dev_->Update();
    left_ = std::make_unique<MonoHiFiDevice>(dev_.get(), 0);
    right_ = std::make_unique<MonoHiFiDevice>(dev_.get(), 1);
  }

  void RunFor(uint64_t samples) {
    while (samples > 0) {
      const uint64_t n = std::min<uint64_t>(1024, samples);
      clock_->Advance(n);
      dev_->Update();
      samples -= n;
    }
  }

  // Extracts channel samples from the interleaved capture at frame time t.
  std::vector<int16_t> Heard(ATime t, size_t frames, unsigned channel) {
    const auto raw = sink_->Segment(t, frames * 4, 4);
    std::vector<int16_t> out;
    const auto* interleaved = reinterpret_cast<const int16_t*>(raw.data());
    for (size_t i = 0; i + 1 < raw.size() / 2; i += 2) {
      out.push_back(interleaved[i + channel]);
    }
    return out;
  }

  std::shared_ptr<ManualSampleClock> clock_;
  std::unique_ptr<HiFiDevice> dev_;
  std::shared_ptr<CaptureSink> sink_;
  std::unique_ptr<MonoHiFiDevice> left_;
  std::unique_ptr<MonoHiFiDevice> right_;
};

TEST_F(HiFiDeviceTest, StereoPlay) {
  ServerAC ac;
  ac.device = dev_.get();
  ACAttributes attrs;
  attrs.encoding = AEncodeType::kLin16;
  attrs.channels = 2;
  ac.attrs = attrs;
  ASSERT_TRUE(dev_->MakeACOps(attrs, &ac.ops).ok());

  std::vector<int16_t> frames(2000);
  for (size_t i = 0; i < frames.size(); i += 2) {
    frames[i] = 1111;       // left
    frames[i + 1] = -2222;  // right
  }
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(ac, 5000,
                         std::span<const uint8_t>(
                             reinterpret_cast<const uint8_t*>(frames.data()), 4000),
                         !HostIsLittleEndian(), &outcome)
                  .ok());
  RunFor(12000);
  const auto left = Heard(5000, 1000, 0);
  const auto right = Heard(5000, 1000, 1);
  ASSERT_GE(left.size(), 900u);
  EXPECT_EQ(left[100], 1111);
  EXPECT_EQ(right[100], -2222);
}

TEST_F(HiFiDeviceTest, MonoViewsAreIndependentChannels) {
  ServerAC lac;
  lac.device = left_.get();
  ACAttributes attrs;
  attrs.encoding = AEncodeType::kLin16;
  attrs.channels = 1;
  lac.attrs = attrs;
  ASSERT_TRUE(left_->MakeACOps(attrs, &lac.ops).ok());
  ServerAC rac = lac;
  rac.device = right_.get();
  ASSERT_TRUE(right_->MakeACOps(attrs, &rac.ops).ok());

  std::vector<int16_t> ltone(1000, 500);
  std::vector<int16_t> rtone(1000, -900);
  PlayOutcome outcome;
  ASSERT_TRUE(left_->Play(lac, 3000,
                          std::span<const uint8_t>(
                              reinterpret_cast<const uint8_t*>(ltone.data()), 2000),
                          !HostIsLittleEndian(), &outcome)
                  .ok());
  ASSERT_TRUE(right_->Play(rac, 3500,
                           std::span<const uint8_t>(
                               reinterpret_cast<const uint8_t*>(rtone.data()), 2000),
                           !HostIsLittleEndian(), &outcome)
                   .ok());
  RunFor(10000);
  const auto left = Heard(3000, 400, 0);
  const auto right = Heard(3000, 400, 1);
  EXPECT_EQ(left[100], 500);
  EXPECT_EQ(right[100], 0);  // right starts 500 frames later
  const auto right_later = Heard(3600, 400, 1);
  const auto left_later = Heard(3600, 400, 0);
  EXPECT_EQ(right_later[100], -900);
  EXPECT_EQ(left_later[100], 500);  // left still playing
}

TEST_F(HiFiDeviceTest, MonoViewSharesParentTime) {
  clock_->Advance(7777);
  EXPECT_EQ(left_->GetTime(), dev_->GetTime());
}

}  // namespace
}  // namespace af
