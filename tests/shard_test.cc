// The sharded server (PR 6): the cross-shard mailbox in isolation, then a
// four-shard server exercised through the public client API.
//
// The mailbox tests pin the SPSC contract (FIFO per producer ring, spill
// beyond kRingCapacity, wake semantics, HasPending) and run a seeded
// multi-producer soak that is the TSan target for the whole hand-off
// design: every producer thread owns exactly one ring, the consumer drains
// from its own thread, and the release/acquire cursor pair is the only
// synchronization - any missing fence shows up as a data-race report or a
// sequence gap here.
//
// The server tests pin clients to specific shards (AdoptClientOnShard) so
// every request to the shard-0-owned CODEC crosses a shard boundary:
// dispatch via the borrow protocol, events fanning out across shards,
// faults on a borrowed connection, kill/restart of a shard thread, and
// stats/trace aggregation at reply time.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "client/audio_context.h"
#include "client/connection.h"
#include "clients/server_runner.h"
#include "proto/stats.h"
#include "proto/trace_wire.h"
#include "server/mailbox.h"
#include "server/shard.h"
#include "transport/fault_stream.h"
#include "transport/stream.h"

namespace af {
namespace {

size_t CounterIndex(const char* name) {
  for (size_t i = 0; i < kNumServerCounters; ++i) {
    if (std::strcmp(kServerCounterNames[i], name) == 0) {
      return i;
    }
  }
  ADD_FAILURE() << "unknown counter " << name;
  return 0;
}

// --- mailbox unit tests -----------------------------------------------------

TEST(ShardMailboxTest, FifoPerProducerRing) {
  ShardMailbox box(3);  // owner = shard 0; producers 1 and 2
  std::vector<int> got;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(box.Post(1, [&got, i] { got.push_back(100 + i); }));
    EXPECT_TRUE(box.Post(2, [&got, i] { got.push_back(200 + i); }));
  }
  EXPECT_TRUE(box.HasPending());
  std::vector<ShardMailbox::Message> msgs;
  EXPECT_EQ(box.Drain(&msgs), 8u);
  for (auto& m : msgs) m();
  ASSERT_EQ(got.size(), 8u);
  // Order within one producer's ring is FIFO even though the interleaving
  // between rings is unspecified.
  std::vector<int> ring1, ring2;
  for (int v : got) (v < 200 ? ring1 : ring2).push_back(v);
  EXPECT_EQ(ring1, (std::vector<int>{100, 101, 102, 103}));
  EXPECT_EQ(ring2, (std::vector<int>{200, 201, 202, 203}));
  EXPECT_FALSE(box.HasPending());
}

TEST(ShardMailboxTest, OverflowSpillsWithoutLoss) {
  ShardMailbox box(2);
  std::atomic<int> ran{0};
  const size_t total = ShardMailbox::kRingCapacity + 10;
  size_t ringed = 0;
  for (size_t i = 0; i < total; ++i) {
    if (box.Post(1, [&ran] { ran.fetch_add(1); })) {
      ++ringed;
    }
  }
  EXPECT_EQ(ringed, ShardMailbox::kRingCapacity);
  EXPECT_EQ(box.spills(), 10u);
  std::vector<ShardMailbox::Message> msgs;
  EXPECT_EQ(box.Drain(&msgs), total);
  for (auto& m : msgs) m();
  EXPECT_EQ(ran.load(), static_cast<int>(total));
  EXPECT_FALSE(box.HasPending());
  // The high-water mark tracks drained batch sizes, so it records the full
  // backlog the stalled consumer found.
  EXPECT_GE(box.depth_high_water(), total);
}

TEST(ShardMailboxTest, WakeAndPendingSemantics) {
  ShardMailbox box(2);
  EXPECT_FALSE(box.ConsumeWake());
  EXPECT_FALSE(box.HasPending());
  EXPECT_TRUE(box.Post(1, [] {}));
  EXPECT_TRUE(box.HasPending());
  EXPECT_TRUE(box.ConsumeWake());
  // The message is still pending after the wake is consumed - exactly the
  // state the shard loop's post-drain HasPending() check exists for.
  EXPECT_TRUE(box.HasPending());
  EXPECT_FALSE(box.ConsumeWake());
  std::vector<ShardMailbox::Message> msgs;
  EXPECT_EQ(box.Drain(&msgs), 1u);
  EXPECT_FALSE(box.HasPending());
}

// The TSan target: P producer threads, each owning its ring per the SPSC
// contract, against one consumer thread. Per-producer sequence numbers
// must arrive gap-free and in order; the seeded jitter varies the
// interleavings between runs of the soak loop in CI.
TEST(ShardMailboxTest, SeededMultiProducerSoakKeepsOrder) {
  constexpr size_t kProducers = 4;
  constexpr uint64_t kPerProducer = 5000;
  ShardMailbox box(kProducers + 1);  // ring 0 (the owner's) stays idle

  std::vector<uint64_t> next_expected(kProducers + 1, 0);
  std::atomic<uint64_t> received{0};
  std::atomic<bool> order_ok{true};

  std::thread consumer([&] {
    std::vector<ShardMailbox::Message> msgs;
    while (received.load(std::memory_order_relaxed) < kProducers * kPerProducer) {
      box.ConsumeWake();
      msgs.clear();
      if (box.Drain(&msgs) == 0) {
        std::this_thread::yield();
        continue;
      }
      for (auto& m : msgs) m();
    }
  });

  std::vector<std::thread> producers;
  for (size_t p = 1; p <= kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::mt19937_64 rng(0xF00D + p);
      for (uint64_t seq = 0; seq < kPerProducer; ++seq) {
        box.Post(p, [&, p, seq] {
          if (next_expected[p] != seq) {
            order_ok.store(false, std::memory_order_relaxed);
          }
          next_expected[p] = seq + 1;
          received.fetch_add(1, std::memory_order_relaxed);
        });
        if ((rng() & 0x3F) == 0) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();

  EXPECT_TRUE(order_ok.load());
  EXPECT_EQ(received.load(), kProducers * kPerProducer);
  for (size_t p = 1; p <= kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer) << "producer " << p;
  }
}

// --- four-shard server tests ------------------------------------------------

class ShardServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerRunner::Config config;
    config.realtime = false;
    config.server.num_shards = 4;
    runner_ = ServerRunner::Start(std::move(config));
    ASSERT_NE(runner_, nullptr);
    ASSERT_EQ(runner_->server().num_shards(), 4u);
  }

  // Connects a client whose server end is pinned to `shard`.
  std::unique_ptr<AFAudioConn> ConnectOnShard(
      uint32_t shard, std::shared_ptr<FaultSchedule> server_faults = nullptr) {
    auto pair = CreateStreamPair();
    if (!pair.ok()) {
      return nullptr;
    }
    auto& [client_end, server_end] = pair.value();
    runner_->server().AdoptClientOnShard(std::move(server_end),
                                         std::move(server_faults), {}, shard);
    auto conn = AFAudioConn::FromStream(std::move(client_end), nullptr,
                                        "(in-process)");
    return conn.ok() ? conn.take() : nullptr;
  }

  std::unique_ptr<ServerRunner> runner_;
};

TEST_F(ShardServerTest, RoundRobinAdoptSpreadsAcrossShards) {
  std::vector<std::unique_ptr<AFAudioConn>> conns;
  for (int i = 0; i < 8; ++i) {
    auto conn = runner_->ConnectInProcess();
    ASSERT_TRUE(conn.ok());
    conns.push_back(conn.take());
    conns.back()->Sync();
  }
  EXPECT_EQ(runner_->server().client_count(), 8u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(runner_->server().shard(s)->client_count(), 2u) << "shard " << s;
  }
  // Every client works no matter which shard it landed on; the CODEC lives
  // on shard 0, so six of these round-trips cross shards.
  for (auto& conn : conns) {
    EXPECT_TRUE(conn->GetTime(runner_->codec_id()).ok());
  }
}

TEST_F(ShardServerTest, CrossShardDispatchUsesMailbox) {
  auto conn = ConnectOnShard(2);
  ASSERT_NE(conn, nullptr);
  const DeviceId dev = runner_->codec_id();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(conn->GetTime(dev).ok());
  }
  // Play through an AC to cover the suspension-capable path as well.
  auto now = conn->GetTime(dev);
  ASSERT_TRUE(now.ok());
  auto ac = conn->CreateAC(dev, 0, ACAttributes{});
  ASSERT_TRUE(ac.ok());
  std::vector<uint8_t> tone(160, 0xFF);
  EXPECT_TRUE(ac.value()->PlaySamples(now.value() + 400, tone).ok());

  // The home shard counts both the mailbox posts and the forwarded device
  // requests; the executor's drain count proves they arrived.
  const uint64_t posted =
      runner_->server().shard(2)->metrics().cross_shard_posted.Value();
  const uint64_t forwarded =
      runner_->server().shard(2)->metrics().cross_shard_plays.Value();
  const uint64_t drained =
      runner_->server().shard(0)->metrics().cross_shard_drained.Value();
  EXPECT_GT(posted, 0u);
  EXPECT_GT(forwarded, 0u);
  EXPECT_GT(drained, 0u);
}

TEST_F(ShardServerTest, EventsCrossShards) {
  auto watcher = ConnectOnShard(3);
  auto changer = ConnectOnShard(1);
  ASSERT_NE(watcher, nullptr);
  ASSERT_NE(changer, nullptr);
  watcher->SelectEvents(0, kPropertyChangeMask);
  watcher->Sync();

  const uint8_t payload[] = {'s', 'h', 'a', 'r', 'd'};
  changer->ChangeProperty(0, kAtomLAST_NUMBER_DIALED, kAtomSTRING, 8,
                          PropertyMode::kReplace, payload);
  changer->Sync();

  // The change executes on shard 0 (the device owner), the watcher lives
  // on shard 3: the event must hop the mailbox to arrive.
  AEvent event;
  ASSERT_TRUE(watcher->NextEvent(&event).ok());
  EXPECT_EQ(event.type, EventType::kPropertyChange);
  EXPECT_EQ(event.w0, kAtomLAST_NUMBER_DIALED);
  EXPECT_GT(runner_->server().shard(0)->metrics().cross_shard_events.Value(), 0u);
}

TEST_F(ShardServerTest, FaultedBorrowedConnectionSurvives) {
  // Server-side read faults on a shard-1 client whose every device request
  // is executed on shard 0: chunked reads and short delays land while the
  // connection is being lent back and forth.
  auto faults = std::make_shared<FaultSchedule>();
  faults->SetMaxReadChunk(3);
  faults->DelayReadAt(64, 200);
  faults->DelayReadAt(256, 200);
  auto conn = ConnectOnShard(1, faults);
  ASSERT_NE(conn, nullptr);
  const DeviceId dev = runner_->codec_id();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(conn->GetTime(dev).ok()) << "iteration " << i;
  }
  conn->Sync();
}

TEST_F(ShardServerTest, StopAndRestartShardThread) {
  auto pinned = ConnectOnShard(1);
  ASSERT_NE(pinned, nullptr);
  ASSERT_TRUE(pinned->GetTime(runner_->codec_id()).ok());

  ASSERT_TRUE(runner_->server().StopShard(1));
  EXPECT_FALSE(runner_->server().StopShard(0));  // shard 0 is not killable

  // The rest of the server keeps serving while shard 1 is down.
  auto other = ConnectOnShard(0);
  ASSERT_NE(other, nullptr);
  EXPECT_TRUE(other->GetTime(runner_->codec_id()).ok());

  ASSERT_TRUE(runner_->server().RestartShard(1));
  EXPECT_FALSE(runner_->server().RestartShard(1));  // already running

  // The pinned client's connection state survived the thread swap.
  EXPECT_TRUE(pinned->GetTime(runner_->codec_id()).ok());
  pinned->Sync();
}

TEST_F(ShardServerTest, StatsAggregateAcrossShards) {
  std::vector<std::unique_ptr<AFAudioConn>> conns;
  for (uint32_t s = 0; s < 4; ++s) {
    auto conn = ConnectOnShard(s);
    ASSERT_NE(conn, nullptr);
    ASSERT_TRUE(conn->GetTime(runner_->codec_id()).ok());
    conns.push_back(std::move(conn));
  }

  auto stats_result = conns[1]->GetServerStats();
  ASSERT_TRUE(stats_result.ok()) << stats_result.status().ToString();
  const ServerStatsWire& stats = stats_result.value();

  ASSERT_EQ(stats.counters.size(), kNumServerCounters);
  EXPECT_EQ(stats.counters[CounterIndex("clients_accepted")], 4u);
  EXPECT_EQ(stats.counters[CounterIndex("shards")], 4u);
  EXPECT_GT(stats.counters[CounterIndex("cross_shard_posted")], 0u);
  EXPECT_GT(stats.counters[CounterIndex("cross_shard_drained")], 0u);

  // The per-shard slices sum back to the aggregate for pure counters.
  ASSERT_EQ(stats.shards.size(), 4u);
  uint64_t accepted = 0, dispatched = 0;
  for (const ShardStatsWire& sh : stats.shards) {
    EXPECT_EQ(sh.index, &sh - stats.shards.data());
    ASSERT_EQ(sh.counters.size(), kNumServerCounters);
    accepted += sh.counters[CounterIndex("clients_accepted")];
    dispatched += sh.counters[CounterIndex("requests_dispatched")];
    EXPECT_EQ(sh.counters[CounterIndex("clients_accepted")], 1u);
  }
  EXPECT_EQ(accepted, stats.counters[CounterIndex("clients_accepted")]);
  EXPECT_EQ(dispatched, stats.counters[CounterIndex("requests_dispatched")]);
}

TEST_F(ShardServerTest, TraceAggregatesAcrossShards) {
  auto near = ConnectOnShard(0);
  auto far = ConnectOnShard(2);
  ASSERT_NE(near, nullptr);
  ASSERT_NE(far, nullptr);
  ASSERT_TRUE(far->GetTrace(kTraceFlagEnable).ok());
  ASSERT_TRUE(near->GetTime(runner_->codec_id()).ok());
  ASSERT_TRUE(far->GetTime(runner_->codec_id()).ok());

  auto trace = far->GetTrace(kTraceFlagDisable);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  // Request records from both clients must appear in the one merged
  // stream; client numbers stride by shard count, so two clients on
  // different shards always carry distinct numbers.
  std::set<uint32_t> request_conns;
  for (const TraceEvent& ev : trace.value().events) {
    if (ev.kind == static_cast<uint8_t>(TraceKind::kRequest) && ev.conn != 0) {
      request_conns.insert(ev.conn);
    }
  }
  EXPECT_GE(request_conns.size(), 2u);
}

TEST_F(ShardServerTest, TraceWindowsShareOneGeneration) {
  // PR 9 regression: GetTrace(enable) used to flip each shard's private
  // flag as the enable request reached it, so shards opened their windows
  // at different instants and the merged stream mixed captures that never
  // overlapped. The shared generation gate opens every ring at one atomic
  // instant; each ring stamps a kTraceStart carrying the generation, so a
  // gathered window can prove all four shards captured the same one.
  std::vector<std::unique_ptr<AFAudioConn>> conns;
  for (uint32_t s = 0; s < 4; ++s) {
    auto conn = ConnectOnShard(s);
    ASSERT_NE(conn, nullptr);
    conns.push_back(std::move(conn));
  }

  auto window_generations = [&]() -> std::map<uint64_t, std::set<uint16_t>> {
    EXPECT_TRUE(conns[0]->GetTrace(kTraceFlagEnable).ok());
    // Traffic from every shard: the home shard records the read/dispatch,
    // shard 0 (the CODEC owner) records the borrowed execution.
    for (auto& conn : conns) {
      EXPECT_TRUE(conn->GetTime(runner_->codec_id()).ok());
    }
    auto trace = conns[0]->GetTrace(kTraceFlagDisable);
    EXPECT_TRUE(trace.ok());
    std::map<uint64_t, std::set<uint16_t>> gens;
    if (!trace.ok()) {
      return gens;
    }
    for (const TraceEvent& ev : trace.value().events) {
      if (ev.kind == static_cast<uint8_t>(TraceKind::kTraceStart)) {
        gens[ev.value].insert(ev.shard);
      }
    }
    return gens;
  };

  const auto first = window_generations();
  ASSERT_EQ(first.size(), 1u) << "shards captured under different generations";
  EXPECT_EQ(first.begin()->first & 1, 1u) << "capture generations are odd";
  EXPECT_EQ(first.begin()->second.size(), 4u)
      << "not every shard stamped the window's start";

  // The next window is a fresh generation — exactly one enable/disable
  // cycle later — again shared by all four shards.
  const auto second = window_generations();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second.begin()->first, first.begin()->first + 2);
  EXPECT_EQ(second.begin()->second.size(), 4u);
}

}  // namespace
}  // namespace af
