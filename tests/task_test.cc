// The server task mechanism (NewTask/AddTask of Section 7.3.1).
#include "server/task.h"

#include <gtest/gtest.h>

namespace af {
namespace {

TEST(TaskQueueTest, RunsInDeadlineOrder) {
  TaskQueue tasks;
  std::vector<int> order;
  tasks.AddAt(300, [&] { order.push_back(3); });
  tasks.AddAt(100, [&] { order.push_back(1); });
  tasks.AddAt(200, [&] { order.push_back(2); });
  tasks.RunDue(250);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  tasks.RunDue(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(tasks.empty());
}

TEST(TaskQueueTest, FifoAmongEqualDeadlines) {
  TaskQueue tasks;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    tasks.AddAt(100, [&order, i] { order.push_back(i); });
  }
  tasks.RunDue(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskQueueTest, NextTimeoutMs) {
  TaskQueue tasks;
  EXPECT_EQ(tasks.NextTimeoutMs(0), -1);
  tasks.AddAt(5'000'000, [] {});  // 5 seconds in microseconds
  EXPECT_EQ(tasks.NextTimeoutMs(0), 5000);
  EXPECT_EQ(tasks.NextTimeoutMs(4'999'000), 1);
  EXPECT_EQ(tasks.NextTimeoutMs(5'000'000), 0);
  EXPECT_EQ(tasks.NextTimeoutMs(9'000'000), 0);  // overdue
}

TEST(TaskQueueTest, SelfReschedulingDoesNotSpin) {
  // The paper's codecUpdateTask reschedules itself; a task that re-adds
  // itself "due now" must still only run once per sweep.
  TaskQueue tasks;
  int runs = 0;
  std::function<void()> self = [&] {
    ++runs;
    tasks.AddAt(0, self);
  };
  tasks.AddAt(0, self);
  tasks.RunDue(100);
  EXPECT_EQ(runs, 1);
  tasks.RunDue(100);
  EXPECT_EQ(runs, 2);
}

TEST(TaskQueueTest, AddInConvertsMilliseconds) {
  TaskQueue tasks;
  bool ran = false;
  tasks.AddIn(1'000'000, 100, [&] { ran = true; });
  tasks.RunDue(1'099'000);
  EXPECT_FALSE(ran);
  tasks.RunDue(1'100'000);
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace af
