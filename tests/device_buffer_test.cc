// Circular device buffers: wrap-around indexing, mixing modes, silence
// fill, and the strided lin16 channel views.
#include "server/device_buffer.h"

#include <gtest/gtest.h>

#include "dsp/g711.h"

namespace af {
namespace {

TEST(DeviceBufferTest, NextPow2) {
  EXPECT_EQ(NextPow2(1), 2u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(32000), 32768u);
  EXPECT_EQ(NextPow2(4u * 48000u), 262144u);
}

TEST(DeviceBufferTest, WriteReadRoundTrip) {
  DeviceBuffer buf(64, 1, kMulawSilence);
  std::vector<uint8_t> data = {10, 20, 30, 40};
  buf.Write(5, data, MixMode::kCopy);
  std::vector<uint8_t> out(4);
  buf.Read(5, out);
  EXPECT_EQ(out, data);
}

TEST(DeviceBufferTest, WrapAroundRegion) {
  DeviceBuffer buf(16, 1, 0);
  std::vector<uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
  buf.Write(12, data, MixMode::kCopy);  // spans slots 12..15 then 0..3
  std::vector<uint8_t> out(8);
  buf.Read(12, out);
  EXPECT_EQ(out, data);
}

TEST(DeviceBufferTest, TimeWrapMapsContinuously) {
  // Because the ring size divides 2^32, slots stay continuous across the
  // ATime wrap.
  DeviceBuffer buf(16, 1, 0);
  std::vector<uint8_t> data = {7, 8, 9, 10};
  buf.Write(0xFFFFFFFEu, data, MixMode::kCopy);  // crosses time 2^32
  std::vector<uint8_t> out(4);
  buf.Read(0xFFFFFFFEu, out);
  EXPECT_EQ(out, data);
  // The sample at wrapped time 1 is data[3].
  std::vector<uint8_t> one(1);
  buf.Read(1u, one);
  EXPECT_EQ(one[0], 10);
}

TEST(DeviceBufferTest, MulawMixing) {
  DeviceBuffer buf(32, 1, kMulawSilence);
  const uint8_t a = MulawFromLinear16(8000);
  const uint8_t b = MulawFromLinear16(4000);
  buf.Write(0, std::vector<uint8_t>{a}, MixMode::kCopy);
  buf.Write(0, std::vector<uint8_t>{b}, MixMode::kMixMulaw);
  std::vector<uint8_t> out(1);
  buf.Read(0, out);
  EXPECT_NEAR(MulawToLinear16(out[0]), 12000, 300);
}

TEST(DeviceBufferTest, Lin16Mixing) {
  DeviceBuffer buf(32, 2, 0);
  const int16_t a = 1200;
  const int16_t b = -300;
  buf.Write(3, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&a), 2),
            MixMode::kCopy);
  buf.Write(3, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&b), 2),
            MixMode::kMixLin16);
  int16_t out = 0;
  buf.Read(3, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&out), 2));
  EXPECT_EQ(out, 900);
}

TEST(DeviceBufferTest, SilenceFill) {
  DeviceBuffer buf(16, 1, kMulawSilence);
  std::vector<uint8_t> data(16, 0x42);
  buf.Write(0, data, MixMode::kCopy);
  buf.FillSilence(4, 8);
  std::vector<uint8_t> out(16);
  buf.Read(0, out);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[i], (i >= 4 && i < 12) ? kMulawSilence : 0x42) << i;
  }
}

TEST(DeviceBufferTest, OversizeSilenceFillClears) {
  DeviceBuffer buf(8, 1, 0xFF);
  buf.Write(0, std::vector<uint8_t>(8, 1), MixMode::kCopy);
  buf.FillSilence(3, 100);
  std::vector<uint8_t> out(8);
  buf.Read(0, out);
  for (uint8_t v : out) {
    EXPECT_EQ(v, 0xFF);
  }
}

TEST(DeviceBufferTest, StridedChannelWriteIsolatesChannels) {
  DeviceBuffer buf(16, 4, 0);  // stereo lin16
  std::vector<int16_t> left = {100, 200, 300};
  std::vector<int16_t> right = {-1, -2, -3};
  buf.WriteLin16Channel(2, left, 0, /*mix=*/false);
  buf.WriteLin16Channel(2, right, 1, /*mix=*/false);

  std::vector<int16_t> l(3);
  std::vector<int16_t> r(3);
  buf.ReadLin16Channel(2, l, 0);
  buf.ReadLin16Channel(2, r, 1);
  EXPECT_EQ(l, left);
  EXPECT_EQ(r, right);

  // Full-frame read shows interleaving.
  std::vector<uint8_t> raw(3 * 4);
  buf.Read(2, raw);
  const auto* frames = reinterpret_cast<const int16_t*>(raw.data());
  EXPECT_EQ(frames[0], 100);
  EXPECT_EQ(frames[1], -1);
  EXPECT_EQ(frames[2], 200);
}

TEST(DeviceBufferTest, StridedChannelMix) {
  DeviceBuffer buf(16, 4, 0);
  std::vector<int16_t> first = {1000};
  std::vector<int16_t> second = {500};
  buf.WriteLin16Channel(0, first, 0, false);
  buf.WriteLin16Channel(0, second, 0, true);
  std::vector<int16_t> out(1);
  buf.ReadLin16Channel(0, out, 0);
  EXPECT_EQ(out[0], 1500);
}

}  // namespace
}  // namespace af
