// SIMD-vs-scalar golden equivalence for the hot DSP kernels.
//
// Every block kernel with an optimized form (unrolled table gathers,
// SSE2/NEON saturating adds, the Q15 gain multiply) is run twice over the
// same corpus — once with SetSimdEnabled(false) forcing the scalar
// reference, once with the optimized dispatch — and the outputs must be
// bit-identical. The corpus covers the saturation edge values, every
// length from 0 through a few vector widths plus a remainder tail, and
// deliberately misaligned spans, because those are exactly where a lane
// kernel diverges from its scalar twin. A final pass repeats the kernels
// with the global trace ring live and the allocation counter armed: the
// optimized forms must preserve the hot path's zero-allocation guarantee.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "common/trace.h"
#include "dsp/g711.h"
#include "dsp/gain.h"
#include "dsp/mix.h"
#include "dsp/simd.h"

// --- allocation counting hook (same shape as conversion_golden_test) --------

namespace {
volatile size_t g_alloc_count = 0;
volatile bool g_alloc_armed = false;
}  // namespace

void* operator new(std::size_t n) {
  if (g_alloc_armed) {
    g_alloc_count = g_alloc_count + 1;
  }
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  if (g_alloc_armed) {
    g_alloc_count = g_alloc_count + 1;
  }
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace af {
namespace {

// Deterministic corpus generator (xorshift; no libc rand state).
uint32_t NextRand(uint32_t* state) {
  uint32_t x = *state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return *state = x;
}

// Lengths that straddle every dispatch boundary: empty, sub-vector, exact
// multiples of the 8-lane and 4-way-unroll widths, and ragged tails.
const size_t kLengths[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,  15, 16, 17,
                           23, 24, 25, 31, 32, 33, 63, 64, 65, 1024, 1027};

std::vector<int16_t> RandomLin16(size_t n, uint32_t* state) {
  std::vector<int16_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    // Sprinkle the saturation edges in: they are where an inexact lane
    // kernel (wrong rounding, non-saturating add) first diverges.
    switch (NextRand(state) % 16) {
      case 0:
        v[i] = 32767;
        break;
      case 1:
        v[i] = -32768;
        break;
      case 2:
        v[i] = -1;
        break;
      default:
        v[i] = static_cast<int16_t>(NextRand(state));
        break;
    }
  }
  return v;
}

std::vector<uint8_t> RandomBytes(size_t n, uint32_t* state) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(NextRand(state));
  }
  return v;
}

// Runs `kernel` with SIMD off then on and asserts identical output.
// `kernel` fills its output from scratch each call, so order is free.
template <typename MakeOutput, typename Kernel>
void ExpectBitExact(MakeOutput make_output, Kernel kernel, const char* what,
                    size_t n) {
  auto scalar_out = make_output();
  auto simd_out = make_output();
  SetSimdEnabled(false);
  kernel(scalar_out);
  SetSimdEnabled(true);
  kernel(simd_out);
  ASSERT_EQ(scalar_out.size(), simd_out.size());
  for (size_t i = 0; i < scalar_out.size(); ++i) {
    ASSERT_EQ(scalar_out[i], simd_out[i])
        << what << " diverges at sample " << i << " of " << n;
  }
}

class SimdGoldenTest : public ::testing::Test {
 protected:
  void TearDown() override { SetSimdEnabled(true); }
};

TEST_F(SimdGoldenTest, CompiledLevelIsNamed) {
  SetSimdEnabled(true);
  EXPECT_EQ(ActiveSimdLevel(), CompiledSimdLevel());
  EXPECT_NE(SimdLevelName(ActiveSimdLevel()), nullptr);
  SetSimdEnabled(false);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  EXPECT_STREQ(SimdLevelName(ActiveSimdLevel()), "scalar");
}

TEST_F(SimdGoldenTest, MixLin16Block) {
  uint32_t state = 0x1234567;
  for (const size_t n : kLengths) {
    const auto dst0 = RandomLin16(n, &state);
    const auto src = RandomLin16(n, &state);
    ExpectBitExact(
        [&] { return dst0; },
        [&](std::vector<int16_t>& dst) {
          MixLin16Block(std::span<int16_t>(dst), std::span<const int16_t>(src));
        },
        "MixLin16Block", n);
    // The explicit scalar entry point is the same function the dispatcher
    // falls back to; pin that equivalence too.
    auto ref = dst0;
    MixLin16BlockScalar(std::span<int16_t>(ref), std::span<const int16_t>(src));
    auto via_dispatch = dst0;
    SetSimdEnabled(true);
    MixLin16Block(std::span<int16_t>(via_dispatch), std::span<const int16_t>(src));
    EXPECT_EQ(ref, via_dispatch);
  }
}

TEST_F(SimdGoldenTest, MixLin16BlockSaturatesExactly) {
  // Worst-case saturation pressure: every lane clamps, both directions.
  std::vector<int16_t> dst(33, 32767);
  std::vector<int16_t> src(33, 32767);
  SetSimdEnabled(true);
  MixLin16Block(std::span<int16_t>(dst), std::span<const int16_t>(src));
  for (const int16_t s : dst) {
    EXPECT_EQ(s, 32767);
  }
  dst.assign(33, -32768);
  src.assign(33, -32768);
  MixLin16Block(std::span<int16_t>(dst), std::span<const int16_t>(src));
  for (const int16_t s : dst) {
    EXPECT_EQ(s, -32768);
  }
}

TEST_F(SimdGoldenTest, MixLin16BlockUnalignedSpans) {
  // Offset the spans off any 16-byte boundary: the lane loops must use
  // unaligned loads and still match the scalar form.
  uint32_t state = 0xCAFE;
  std::vector<int16_t> dst_buf = RandomLin16(64 + 3, &state);
  std::vector<int16_t> src_buf = RandomLin16(64 + 3, &state);
  for (size_t off = 0; off < 3; ++off) {
    auto dst_scalar = dst_buf;
    auto dst_simd = dst_buf;
    SetSimdEnabled(false);
    MixLin16Block(std::span<int16_t>(dst_scalar.data() + off, 64),
                  std::span<const int16_t>(src_buf.data() + off, 64));
    SetSimdEnabled(true);
    MixLin16Block(std::span<int16_t>(dst_simd.data() + off, 64),
                  std::span<const int16_t>(src_buf.data() + off, 64));
    EXPECT_EQ(dst_scalar, dst_simd) << "offset " << off;
  }
}

TEST_F(SimdGoldenTest, MixCompandedBlocks) {
  uint32_t state = 0xBEEF;
  for (const size_t n : kLengths) {
    const auto dst0 = RandomBytes(n, &state);
    const auto src = RandomBytes(n, &state);
    ExpectBitExact(
        [&] { return dst0; },
        [&](std::vector<uint8_t>& dst) {
          MixMulawBlock(std::span<uint8_t>(dst), std::span<const uint8_t>(src));
        },
        "MixMulawBlock", n);
    ExpectBitExact(
        [&] { return dst0; },
        [&](std::vector<uint8_t>& dst) {
          MixAlawBlock(std::span<uint8_t>(dst), std::span<const uint8_t>(src));
        },
        "MixAlawBlock", n);
  }
}

TEST_F(SimdGoldenTest, FormatConversionBlocks) {
  uint32_t state = 0xD15C0;
  for (const size_t n : kLengths) {
    const auto bytes = RandomBytes(n, &state);
    const auto samples = RandomLin16(n, &state);
    ExpectBitExact(
        [&] { return std::vector<int16_t>(n); },
        [&](std::vector<int16_t>& out) {
          DecodeMulawBlock(std::span<const uint8_t>(bytes), std::span<int16_t>(out));
        },
        "DecodeMulawBlock", n);
    ExpectBitExact(
        [&] { return std::vector<int16_t>(n); },
        [&](std::vector<int16_t>& out) {
          DecodeAlawBlock(std::span<const uint8_t>(bytes), std::span<int16_t>(out));
        },
        "DecodeAlawBlock", n);
    ExpectBitExact(
        [&] { return std::vector<uint8_t>(n); },
        [&](std::vector<uint8_t>& out) {
          EncodeMulawBlock(std::span<const int16_t>(samples), std::span<uint8_t>(out));
        },
        "EncodeMulawBlock", n);
    ExpectBitExact(
        [&] { return std::vector<uint8_t>(n); },
        [&](std::vector<uint8_t>& out) {
          EncodeAlawBlock(std::span<const int16_t>(samples), std::span<uint8_t>(out));
        },
        "EncodeAlawBlock", n);
  }
}

TEST_F(SimdGoldenTest, CompandedGainTables) {
  uint32_t state = 0xF00D;
  const auto bytes = RandomBytes(1027, &state);
  for (int gain_db = kMinGainDb; gain_db <= kMaxGainDb; ++gain_db) {
    for (const size_t n : {size_t{0}, size_t{5}, size_t{33}, size_t{1027}}) {
      const std::span<const uint8_t> src(bytes.data(), n);
      // Copying form.
      ExpectBitExact(
          [&] { return std::vector<uint8_t>(n); },
          [&](std::vector<uint8_t>& out) {
            ApplyMulawGain(gain_db, src, std::span<uint8_t>(out));
          },
          "ApplyMulawGain(copy)", n);
      ExpectBitExact(
          [&] { return std::vector<uint8_t>(n); },
          [&](std::vector<uint8_t>& out) {
            ApplyAlawGain(gain_db, src, std::span<uint8_t>(out));
          },
          "ApplyAlawGain(copy)", n);
      // In-place form (the output vector doubles as the input).
      ExpectBitExact(
          [&] { return std::vector<uint8_t>(bytes.begin(), bytes.begin() + n); },
          [&](std::vector<uint8_t>& buf) {
            ApplyMulawGain(gain_db, std::span<uint8_t>(buf));
          },
          "ApplyMulawGain(in-place)", n);
      ExpectBitExact(
          [&] { return std::vector<uint8_t>(bytes.begin(), bytes.begin() + n); },
          [&](std::vector<uint8_t>& buf) {
            ApplyAlawGain(gain_db, std::span<uint8_t>(buf));
          },
          "ApplyAlawGain(in-place)", n);
    }
  }
}

TEST_F(SimdGoldenTest, Lin16GainAllIntegralGains) {
  uint32_t state = 0x9E37;
  for (int gain_db = kMinGainDb; gain_db <= kMaxGainDb; ++gain_db) {
    for (const size_t n : {size_t{0}, size_t{7}, size_t{8}, size_t{33}, size_t{1024}}) {
      const auto samples = RandomLin16(n, &state);
      ExpectBitExact(
          [&] { return samples; },
          [&](std::vector<int16_t>& buf) {
            ApplyLin16Gain(gain_db, std::span<int16_t>(buf));
          },
          "ApplyLin16Gain(in-place)", n);
      ExpectBitExact(
          [&] { return std::vector<int16_t>(n); },
          [&](std::vector<int16_t>& out) {
            ApplyLin16Gain(gain_db, std::span<const int16_t>(samples),
                           std::span<int16_t>(out));
          },
          "ApplyLin16Gain(copy)", n);
    }
  }
}

TEST_F(SimdGoldenTest, Lin16GainFractionalAndEdgeValues) {
  // Fractional gains and the full edge-value set: the Q15 SSE2 path must
  // round and saturate exactly like the scalar shift-and-clamp.
  std::vector<int16_t> edges = {-32768, -32767, -16384, -1, 0,
                                1,      2,      16383,  16384, 32767};
  while (edges.size() < 33) {
    edges.push_back(edges[edges.size() % 10]);
  }
  for (const double gain_db : {-29.5, -12.25, -6.02, -0.5, -0.01}) {
    ExpectBitExact(
        [&] { return edges; },
        [&](std::vector<int16_t>& buf) {
          ApplyLin16Gain(gain_db, std::span<int16_t>(buf));
        },
        "ApplyLin16Gain(fractional)", edges.size());
  }
  // Boost gains take the scalar path on every dispatch level; still assert
  // the outputs agree so the dispatch condition itself is covered.
  for (const double gain_db : {0.5, 6.02, 29.5}) {
    ExpectBitExact(
        [&] { return edges; },
        [&](std::vector<int16_t>& buf) {
          ApplyLin16Gain(gain_db, std::span<int16_t>(buf));
        },
        "ApplyLin16Gain(boost)", edges.size());
  }
}

TEST_F(SimdGoldenTest, OptimizedKernelsDoNotAllocate) {
  // All the dispatched kernels, run with the trace ring live and the
  // allocation counter armed. Warm-up first: lazy table builds (mix and
  // gain tables) are one-time costs outside the steady state.
  uint32_t state = 0xA110C;
  auto lin_dst = RandomLin16(1024, &state);
  const auto lin_src = RandomLin16(1024, &state);
  auto byte_dst = RandomBytes(1024, &state);
  const auto byte_src = RandomBytes(1024, &state);
  std::vector<int16_t> lin_out(1024);
  std::vector<uint8_t> byte_out(1024);

  const auto run_all = [&](bool simd) {
    SetSimdEnabled(simd);
    MixLin16Block(std::span<int16_t>(lin_dst), std::span<const int16_t>(lin_src));
    MixMulawBlock(std::span<uint8_t>(byte_dst), std::span<const uint8_t>(byte_src));
    MixAlawBlock(std::span<uint8_t>(byte_dst), std::span<const uint8_t>(byte_src));
    DecodeMulawBlock(std::span<const uint8_t>(byte_src), std::span<int16_t>(lin_out));
    EncodeMulawBlock(std::span<const int16_t>(lin_src), std::span<uint8_t>(byte_out));
    DecodeAlawBlock(std::span<const uint8_t>(byte_src), std::span<int16_t>(lin_out));
    EncodeAlawBlock(std::span<const int16_t>(lin_src), std::span<uint8_t>(byte_out));
    ApplyMulawGain(-6, std::span<uint8_t>(byte_dst));
    ApplyAlawGain(-6, std::span<uint8_t>(byte_dst));
    ApplyLin16Gain(-6.0, std::span<int16_t>(lin_dst));
    ApplyLin16Gain(6.0, std::span<int16_t>(lin_dst));  // boost: scalar path
  };
  run_all(true);
  run_all(false);

  GlobalTrace().Clear();
  GlobalTrace().Enable(true);
  g_alloc_count = 0;
  g_alloc_armed = true;
  for (int i = 0; i < 100; ++i) {
    run_all(true);
    run_all(false);
  }
  g_alloc_armed = false;
  GlobalTrace().Enable(false);
  GlobalTrace().Clear();
  EXPECT_EQ(g_alloc_count, 0u)
      << "a dispatched DSP kernel allocated on the hot path";
  SetSimdEnabled(true);
}

}  // namespace
}  // namespace af
