// Client-library surface not covered elsewhere: the event-queue calls
// (Tables 3/4), synchronous mode, after-functions, and failure behavior
// when clients vanish mid-operation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/audio_context.h"
#include "clients/server_runner.h"

namespace af {
namespace {

class ClientApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerRunner::Config config;
    config.with_codec = true;
    config.with_phone = true;
    config.realtime = false;
    runner_ = ServerRunner::Start(config);
    ASSERT_NE(runner_, nullptr);
    auto conn = runner_->ConnectInProcess();
    ASSERT_TRUE(conn.ok());
    conn_ = conn.take();
  }

  // Raises a scripted burst of phone events (2 DTMF digits + a loop edge).
  void RaisePhoneEvents() {
    conn_->SelectEvents(runner_->phone_id(), kAllEventsMask);
    conn_->Sync();
    runner_->RunOnLoop([this] {
      auto& phone = *runner_->phone();
      phone.HookSwitch(true);
      phone.line().SetExtensionOffHook(true);
      phone.line().FarEndSendDigits(100, "42");
    });
    // Let the line audio play out so the DTMF detector sees it.
    for (int i = 0; i < 8; ++i) {
      runner_->manual_clock()->Advance(500);
      runner_->RunOnLoop([this] { runner_->phone()->Update(); });
    }
  }

  std::unique_ptr<ServerRunner> runner_;
  std::unique_ptr<AFAudioConn> conn_;
};

TEST_F(ClientApiTest, PendingAndEventsQueued) {
  EXPECT_EQ(conn_->Pending(), 0);
  RaisePhoneEvents();
  // HookSwitch + PhoneLoop + DTMF '4' + DTMF '2'.
  EXPECT_EQ(conn_->EventsQueued(AFAudioConn::QueuedMode::kAfterReading), 4);
  // Already-read count doesn't touch the wire.
  EXPECT_EQ(conn_->EventsQueued(AFAudioConn::QueuedMode::kAlready), 4);
  AEvent event;
  ASSERT_TRUE(conn_->NextEvent(&event).ok());
  EXPECT_EQ(conn_->Pending(), 3);
}

TEST_F(ClientApiTest, NextEventBlocksUntilDelivery) {
  conn_->SelectEvents(runner_->phone_id(), kHookSwitchMask);
  conn_->Sync();
  std::thread scripter([this] {
    SleepMicros(100000);
    runner_->RunOnLoop([this] { runner_->phone()->HookSwitch(true); });
  });
  AEvent event;
  const uint64_t start = HostMicros();
  ASSERT_TRUE(conn_->NextEvent(&event).ok());
  EXPECT_GE(HostMicros() - start, 80000u);
  EXPECT_EQ(event.type, EventType::kHookSwitch);
  scripter.join();
}

TEST_F(ClientApiTest, IfEventFamilySelectsByPredicate) {
  RaisePhoneEvents();
  const auto is_dtmf = [](const AEvent& e) { return e.type == EventType::kPhoneDTMF; };

  // Peek does not dequeue.
  AEvent peeked;
  ASSERT_TRUE(conn_->PeekIfEvent(&peeked, is_dtmf));
  EXPECT_EQ(peeked.detail, '4');
  EXPECT_EQ(conn_->EventsQueued(AFAudioConn::QueuedMode::kAlready), 4);

  // CheckIfEvent dequeues the first match, skipping non-matches.
  AEvent taken;
  ASSERT_TRUE(conn_->CheckIfEvent(&taken, is_dtmf));
  EXPECT_EQ(taken.detail, '4');
  EXPECT_EQ(conn_->EventsQueued(AFAudioConn::QueuedMode::kAlready), 3);

  // IfEvent (blocking) finds the next one immediately.
  AEvent second;
  ASSERT_TRUE(conn_->IfEvent(&second, is_dtmf).ok());
  EXPECT_EQ(second.detail, '2');

  // No more DTMF: CheckIfEvent declines without blocking.
  AEvent none;
  EXPECT_FALSE(conn_->CheckIfEvent(&none, is_dtmf));
}

TEST_F(ClientApiTest, EventMaskFiltersDelivery) {
  conn_->SelectEvents(runner_->phone_id(), kPhoneLoopMask);  // loop only
  conn_->Sync();
  runner_->RunOnLoop([this] {
    runner_->phone()->HookSwitch(true);  // hook event: not selected
    runner_->phone()->line().SetExtensionOffHook(true);
  });
  AEvent event;
  ASSERT_TRUE(conn_->NextEvent(&event).ok());
  EXPECT_EQ(event.type, EventType::kPhoneLoop);
  EXPECT_EQ(conn_->Pending(), 0);
}

TEST_F(ClientApiTest, SynchronousModeSurfacesErrorsImmediately) {
  std::vector<ErrorPacket> errors;
  conn_->SetErrorHandler(
      [&errors](AFAudioConn&, const ErrorPacket& e) { errors.push_back(e); });
  conn_->SetSynchronize(true);
  conn_->SetOutputGain(0, 99);  // async request, invalid value
  // With AFSynchronize on, the error has already been fetched.
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code, AfError::kBadValue);
  conn_->SetSynchronize(false);
}

TEST_F(ClientApiTest, AfterFunctionRunsPerRequest) {
  int calls = 0;
  conn_->SetAfterFunction([&calls](AFAudioConn&) { ++calls; });
  conn_->NoOp();
  conn_->NoOp();
  EXPECT_EQ(calls, 2);
  conn_->SetAfterFunction(nullptr);
}

TEST_F(ClientApiTest, ServerSurvivesClientVanishingWhileSuspended) {
  // A client disconnects while its blocking record is suspended in the
  // server; the resume task must find it gone and everyone else lives on.
  {
    auto doomed_result = runner_->ConnectInProcess();
    ASSERT_TRUE(doomed_result.ok());
    auto doomed = doomed_result.take();
    doomed->SetIOErrorHandler([](AFAudioConn&) {});  // no exit
    auto ac = doomed->CreateAC(0, 0, ACAttributes{});
    ASSERT_TRUE(ac.ok());
    RecordSamplesReq req;
    req.ac = ac.value()->id();
    req.start_time = 0;
    req.nbytes = 8000;  // one second into the (frozen) future: suspends
    doomed->QueueRequest(Opcode::kRecordSamples, req);
    doomed->Flush();
    SleepMicros(50000);  // request reaches the server and suspends
  }  // connection closes here with the request still pending

  // Advance time so the resume task fires against the dead client.
  runner_->manual_clock()->Advance(16000);
  SleepMicros(1200000);  // the 1 s resume deadline passes
  auto t = conn_->GetTime(0);
  ASSERT_TRUE(t.ok());
  runner_->RunOnLoop([this] { EXPECT_EQ(runner_->server().client_count(), 1u); });
}

TEST_F(ClientApiTest, OpenRejectsGarbageNames) {
  EXPECT_FALSE(AFAudioConn::Open("not-a-server-name").ok());
  EXPECT_FALSE(AFAudioConn::Open("nosuchhost.invalid:0").ok());
}

}  // namespace
}  // namespace af
