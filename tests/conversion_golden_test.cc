// Golden equivalence for the zero-allocation conversion pipeline.
//
// The arena-based conversion modules replaced allocate-per-call versions;
// this suite keeps the old shape alive as reference oracles (straight
// per-sample functional decode/encode into fresh vectors) and checks the
// new pipeline against them for every client-encoding x device-encoding x
// byte-order x window combination, checks the cached gain tables against
// the functional gain form, and proves the steady-state play/record path
// performs zero heap allocations.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <new>

#include "common/endian.h"
#include "common/trace.h"
#include "devices/codec_device.h"
#include "dsp/adpcm.h"
#include "dsp/g711.h"
#include "dsp/gain.h"
#include "server/audio_device.h"

// --- allocation counting hook ----------------------------------------------
//
// Replaces global operator new/delete with malloc-backed versions that
// count while armed. Only the plain (unaligned) forms are replaced; the
// server never over-aligns, and the aligned forms keep pairing with the
// default implementation.

namespace {
volatile size_t g_alloc_count = 0;
volatile bool g_alloc_armed = false;
}  // namespace

void* operator new(std::size_t n) {
  if (g_alloc_armed) {
    g_alloc_count = g_alloc_count + 1;
  }
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  if (g_alloc_armed) {
    g_alloc_count = g_alloc_count + 1;
  }
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace af {
namespace {

// --- reference oracles ------------------------------------------------------
//
// The pre-arena implementations: allocate a fresh vector per call, decode
// and encode one sample at a time with the functional (non-table) forms.

int16_t RefDecodeSample(AEncodeType enc, uint8_t b) {
  return enc == AEncodeType::kMu255 ? MulawToLinear16(b) : AlawToLinear16(b);
}

uint8_t RefEncodeSample(AEncodeType enc, int16_t s) {
  return enc == AEncodeType::kMu255 ? MulawFromLinear16(s) : AlawFromLinear16(s);
}

bool HostBig() { return !HostIsLittleEndian(); }

// Client/device lin16 byte stream -> host int16 samples.
std::vector<int16_t> RefLin16FromBytes(std::span<const uint8_t> bytes, bool big) {
  std::vector<int16_t> out(bytes.size() / 2);
  for (size_t i = 0; i < out.size(); ++i) {
    const uint8_t lo = big ? bytes[2 * i + 1] : bytes[2 * i];
    const uint8_t hi = big ? bytes[2 * i] : bytes[2 * i + 1];
    out[i] = static_cast<int16_t>(static_cast<uint16_t>(lo) |
                                  (static_cast<uint16_t>(hi) << 8));
  }
  return out;
}

std::vector<uint8_t> RefLin16ToBytes(std::span<const int16_t> samples, bool big) {
  std::vector<uint8_t> out(samples.size() * 2);
  for (size_t i = 0; i < samples.size(); ++i) {
    const auto u = static_cast<uint16_t>(samples[i]);
    out[2 * i] = static_cast<uint8_t>(big ? u >> 8 : u & 0xFF);
    out[2 * i + 1] = static_cast<uint8_t>(big ? u & 0xFF : u >> 8);
  }
  return out;
}

// Client bytes -> host int16 samples, whole request.
std::vector<int16_t> RefDecodeClient(AEncodeType cli, std::span<const uint8_t> bytes,
                                     bool big) {
  switch (cli) {
    case AEncodeType::kLin16:
      return RefLin16FromBytes(bytes, big);
    case AEncodeType::kAdpcm32:
      return AdpcmDecode(bytes, bytes.size() * 2);
    default: {
      std::vector<int16_t> out(bytes.size());
      for (size_t i = 0; i < bytes.size(); ++i) {
        out[i] = RefDecodeSample(cli, bytes[i]);
      }
      return out;
    }
  }
}

// The old convert_play: whole-request decode, frame window, device encode.
std::vector<uint8_t> RefConvertPlay(AEncodeType dev, AEncodeType cli,
                                    std::span<const uint8_t> bytes, bool big, size_t skip,
                                    size_t nframes) {
  // Byte-identical paths keep their bytes (no companding round trip).
  if (dev == cli && (dev == AEncodeType::kMu255 || dev == AEncodeType::kAlaw)) {
    return std::vector<uint8_t>(bytes.begin() + skip, bytes.begin() + skip + nframes);
  }
  if (dev == AEncodeType::kLin16 && cli == AEncodeType::kLin16) {
    const auto lin = RefLin16FromBytes(bytes, big);
    return RefLin16ToBytes(std::span<const int16_t>(lin).subspan(skip, nframes), HostBig());
  }
  if ((dev == AEncodeType::kMu255 || dev == AEncodeType::kAlaw) &&
      (cli == AEncodeType::kMu255 || cli == AEncodeType::kAlaw)) {
    // Direct transcode, as the cross-format tables are defined.
    std::vector<uint8_t> out(nframes);
    for (size_t i = 0; i < nframes; ++i) {
      out[i] = dev == AEncodeType::kMu255 ? AlawToMulaw(bytes[skip + i])
                                          : MulawToAlaw(bytes[skip + i]);
    }
    return out;
  }
  const std::vector<int16_t> lin = RefDecodeClient(cli, bytes, big);
  const size_t n = std::min(nframes, lin.size() > skip ? lin.size() - skip : 0);
  if (dev == AEncodeType::kLin16) {
    return RefLin16ToBytes(std::span<const int16_t>(lin).subspan(skip, n), HostBig());
  }
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = RefEncodeSample(dev, lin[skip + i]);
  }
  return out;
}

// The old convert_record: device bytes -> client encoding/byte order.
std::vector<uint8_t> RefConvertRecord(AEncodeType dev, AEncodeType cli,
                                      std::span<const uint8_t> bytes, bool big) {
  if (dev == cli && (dev == AEncodeType::kMu255 || dev == AEncodeType::kAlaw)) {
    return std::vector<uint8_t>(bytes.begin(), bytes.end());
  }
  if (dev == AEncodeType::kLin16 && cli == AEncodeType::kLin16) {
    return RefLin16ToBytes(RefLin16FromBytes(bytes, HostBig()), big);
  }
  if ((dev == AEncodeType::kMu255 || dev == AEncodeType::kAlaw) &&
      (cli == AEncodeType::kMu255 || cli == AEncodeType::kAlaw)) {
    std::vector<uint8_t> out(bytes.size());
    for (size_t i = 0; i < bytes.size(); ++i) {
      out[i] = cli == AEncodeType::kMu255 ? AlawToMulaw(bytes[i]) : MulawToAlaw(bytes[i]);
    }
    return out;
  }
  std::vector<int16_t> lin;
  if (dev == AEncodeType::kLin16) {
    lin = RefLin16FromBytes(bytes, HostBig());
  } else {
    lin.resize(bytes.size());
    for (size_t i = 0; i < bytes.size(); ++i) {
      lin[i] = RefDecodeSample(dev, bytes[i]);
    }
  }
  if (cli == AEncodeType::kLin16) {
    return RefLin16ToBytes(lin, big);
  }
  if (cli == AEncodeType::kAdpcm32) {
    return AdpcmEncode(lin);
  }
  std::vector<uint8_t> out(lin.size());
  for (size_t i = 0; i < lin.size(); ++i) {
    out[i] = RefEncodeSample(cli, lin[i]);
  }
  return out;
}

// --- test data --------------------------------------------------------------

constexpr size_t kFrames = 200;

std::vector<uint8_t> MakeClientBytes(AEncodeType cli, bool big) {
  std::vector<int16_t> lin(kFrames);
  for (size_t i = 0; i < lin.size(); ++i) {
    lin[i] = static_cast<int16_t>((static_cast<int>(i) * 797) % 30000 - 15000);
  }
  switch (cli) {
    case AEncodeType::kLin16:
      return RefLin16ToBytes(lin, big);
    case AEncodeType::kAdpcm32:
      return AdpcmEncode(lin);
    default: {
      std::vector<uint8_t> out(lin.size());
      for (size_t i = 0; i < out.size(); ++i) {
        out[i] = RefEncodeSample(cli, lin[i]);
      }
      return out;
    }
  }
}

std::vector<uint8_t> MakeDeviceBytes(AEncodeType dev) {
  std::vector<int16_t> lin(kFrames);
  for (size_t i = 0; i < lin.size(); ++i) {
    lin[i] = static_cast<int16_t>((static_cast<int>(i) * 1103) % 28000 - 14000);
  }
  if (dev == AEncodeType::kLin16) {
    return RefLin16ToBytes(lin, HostBig());
  }
  std::vector<uint8_t> out(lin.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = RefEncodeSample(dev, lin[i]);
  }
  return out;
}

DeviceDesc DescFor(AEncodeType dev) {
  DeviceDesc desc;
  desc.play_encoding = dev;
  desc.rec_encoding = dev;
  desc.play_nchannels = 1;
  desc.rec_nchannels = 1;
  return desc;
}

std::vector<uint8_t> ToVec(std::span<const uint8_t> s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

const char* Name(AEncodeType e) {
  switch (e) {
    case AEncodeType::kMu255:
      return "mu255";
    case AEncodeType::kAlaw:
      return "alaw";
    case AEncodeType::kLin16:
      return "lin16";
    case AEncodeType::kAdpcm32:
      return "adpcm32";
    default:
      return "?";
  }
}

// --- golden equivalence -----------------------------------------------------

TEST(ConversionGolden, MatchesReferenceForAllCombos) {
  const AEncodeType devs[] = {AEncodeType::kMu255, AEncodeType::kAlaw,
                              AEncodeType::kLin16};
  const AEncodeType clis[] = {AEncodeType::kMu255, AEncodeType::kAlaw,
                              AEncodeType::kLin16, AEncodeType::kAdpcm32};
  const struct {
    size_t skip;
    size_t nframes;
  } windows[] = {{0, kFrames}, {6, 150}, {5, 80}};

  for (const AEncodeType dev : devs) {
    for (const AEncodeType cli : clis) {
      ACAttributes attrs;
      attrs.encoding = cli;
      attrs.channels = 1;
      ACOps ops;
      ASSERT_TRUE(BuildStandardACOps(DescFor(dev), attrs, &ops).ok())
          << Name(dev) << " <- " << Name(cli);
      for (const bool big : {false, true}) {
        SCOPED_TRACE(testing::Message() << "dev=" << Name(dev) << " cli=" << Name(cli)
                                        << " big=" << big);
        ScratchArena arena;
        const std::vector<uint8_t> client = MakeClientBytes(cli, big);
        for (const auto& w : windows) {
          const std::span<const uint8_t> got =
              ops.convert_play(client, big, w.skip, w.nframes, arena);
          const std::vector<uint8_t> want =
              RefConvertPlay(dev, cli, client, big, w.skip, w.nframes);
          EXPECT_EQ(ToVec(got), want) << "play skip=" << w.skip << " n=" << w.nframes;
        }
        const std::vector<uint8_t> device = MakeDeviceBytes(dev);
        const std::span<const uint8_t> rec = ops.convert_record(device, big, arena);
        EXPECT_EQ(ToVec(rec), RefConvertRecord(dev, cli, device, big)) << "record";
      }
    }
  }
}

TEST(ConversionGolden, PassThroughReturnsTheInputSpan) {
  // Matching companded encodings: the conversion must alias the client
  // bytes, not copy them.
  ACAttributes attrs;
  attrs.channels = 1;
  ScratchArena arena;
  for (const AEncodeType enc : {AEncodeType::kMu255, AEncodeType::kAlaw}) {
    attrs.encoding = enc;
    ACOps ops;
    ASSERT_TRUE(BuildStandardACOps(DescFor(enc), attrs, &ops).ok());
    const std::vector<uint8_t> client = MakeClientBytes(enc, false);
    const std::span<const uint8_t> play = ops.convert_play(client, false, 10, 100, arena);
    EXPECT_EQ(play.data(), client.data() + 10);
    const std::span<const uint8_t> rec = ops.convert_record(client, false, arena);
    EXPECT_EQ(rec.data(), client.data());
  }
  // Lin16 both sides, client byte order == host order: also pass-through
  // (the no-swap fast path), in both directions.
  attrs.encoding = AEncodeType::kLin16;
  ACOps ops;
  ASSERT_TRUE(BuildStandardACOps(DescFor(AEncodeType::kLin16), attrs, &ops).ok());
  const std::vector<uint8_t> client = MakeClientBytes(AEncodeType::kLin16, HostBig());
  const std::span<const uint8_t> play =
      ops.convert_play(client, HostBig(), 0, kFrames, arena);
  EXPECT_EQ(play.data(), client.data());
  const std::span<const uint8_t> rec = ops.convert_record(client, HostBig(), arena);
  EXPECT_EQ(rec.data(), client.data());
  // Opposite byte order must NOT alias (a swap happened).
  const std::span<const uint8_t> swapped =
      ops.convert_play(client, !HostBig(), 0, kFrames, arena);
  EXPECT_NE(swapped.data(), client.data());
}

// --- gain tables vs functional form ----------------------------------------

TEST(ConversionGolden, GainTablesMatchFunctionalForm) {
  for (int db = kMinGainDb; db <= kMaxGainDb; ++db) {
    const GainTable& mu = MulawGainTable(db);
    const GainTable& al = AlawGainTable(db);
    for (int s = 0; s < 256; ++s) {
      const auto b = static_cast<uint8_t>(s);
      ASSERT_EQ(mu[b], MulawGainFunctional(db, b)) << "mulaw db=" << db << " s=" << s;
      ASSERT_EQ(al[b], AlawGainFunctional(db, b)) << "alaw db=" << db << " s=" << s;
    }
  }
}

TEST(ConversionGolden, CopyingGainMatchesInPlace) {
  std::vector<uint8_t> src(256);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<uint8_t>(i);
  }
  std::vector<uint8_t> dst(src.size(), 0);
  ApplyMulawGain(-9, src, dst);
  std::vector<uint8_t> in_place = src;
  ApplyMulawGain(-9, in_place);
  EXPECT_EQ(dst, in_place);

  std::vector<int16_t> lsrc(300);
  for (size_t i = 0; i < lsrc.size(); ++i) {
    lsrc[i] = static_cast<int16_t>(i * 219 - 30000);
  }
  std::vector<int16_t> ldst(lsrc.size(), 0);
  ApplyLin16Gain(-4.5, lsrc, ldst);
  std::vector<int16_t> lin_place = lsrc;
  ApplyLin16Gain(-4.5, lin_place);
  EXPECT_EQ(ldst, lin_place);
}

// --- gain through the device pipeline ---------------------------------------

TEST(ConversionGolden, DevicePlayGainMatchesFunctionalOracle) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  auto dev = CodecDevice::Create(clock);
  auto sink = std::make_shared<CaptureSink>();
  dev->sim().SetSink(sink);
  dev->Update();

  const auto run_for = [&](uint64_t samples) {
    for (uint64_t advanced = 0; advanced < samples; advanced += 256) {
      clock->Advance(std::min<uint64_t>(256, samples - advanced));
      dev->Update();
    }
  };

  // Pass-through client data (mulaw -> mulaw): gain must go through the
  // arena's gain slot, leaving the client bytes untouched.
  {
    ServerAC ac;
    ac.device = dev.get();
    ac.attrs.encoding = AEncodeType::kMu255;
    ac.attrs.channels = 1;
    ac.attrs.play_gain_db = -6;
    ac.attrs.preempt = 1;
    ASSERT_TRUE(dev->MakeACOps(ac.attrs, &ac.ops).ok());
    const std::vector<uint8_t> pattern = MakeClientBytes(AEncodeType::kMu255, false);
    const std::vector<uint8_t> before = pattern;
    PlayOutcome outcome;
    ASSERT_TRUE(dev->Play(ac, 4000, pattern, false, &outcome).ok());
    EXPECT_EQ(pattern, before);  // client bytes not scaled in place
    run_for(8000);
    std::vector<uint8_t> want(pattern.size());
    for (size_t i = 0; i < want.size(); ++i) {
      want[i] = MulawGainFunctional(-6, pattern[i]);
    }
    EXPECT_EQ(sink->Segment(4000, want.size()), want);
  }

  // Arena-owned conversion output (lin16 -> mulaw): gain is applied in
  // place on the converted bytes.
  {
    ServerAC ac;
    ac.device = dev.get();
    ac.attrs.encoding = AEncodeType::kLin16;
    ac.attrs.channels = 1;
    ac.attrs.play_gain_db = 9;
    ac.attrs.preempt = 1;
    ASSERT_TRUE(dev->MakeACOps(ac.attrs, &ac.ops).ok());
    const std::vector<uint8_t> client = MakeClientBytes(AEncodeType::kLin16, false);
    const ATime start = dev->GetTime() + 4000;
    PlayOutcome outcome;
    ASSERT_TRUE(dev->Play(ac, start, client, false, &outcome).ok());
    run_for(10000);
    const std::vector<int16_t> lin = RefLin16FromBytes(client, false);
    std::vector<uint8_t> want(lin.size());
    for (size_t i = 0; i < want.size(); ++i) {
      want[i] = MulawGainFunctional(9, MulawFromLinear16(lin[i]));
    }
    EXPECT_EQ(sink->Segment(start, want.size()), want);
  }
}

// --- zero allocation at steady state ----------------------------------------

TEST(ZeroAllocation, SteadyStatePlayRecordDoesNotAllocate) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  auto dev = CodecDevice::Create(clock);
  dev->Update();

  // Two contexts: a pass-through mixing client with gain (exercises the
  // gain slot) and a lin16 converting client (exercises the conversion and
  // in-place gain paths).
  ServerAC mu_ac;
  mu_ac.device = dev.get();
  mu_ac.attrs.encoding = AEncodeType::kMu255;
  mu_ac.attrs.channels = 1;
  mu_ac.attrs.play_gain_db = -6;
  ASSERT_TRUE(dev->MakeACOps(mu_ac.attrs, &mu_ac.ops).ok());

  ServerAC lin_ac;
  lin_ac.device = dev.get();
  lin_ac.attrs.encoding = AEncodeType::kLin16;
  lin_ac.attrs.channels = 1;
  lin_ac.attrs.play_gain_db = 3;
  ASSERT_TRUE(dev->MakeACOps(lin_ac.attrs, &lin_ac.ops).ok());

  const std::vector<uint8_t> mu_data(800, 0x43);
  const std::vector<uint8_t> lin_data(1600, 0x21);

  // Assertion-free cycle: gtest machinery stays out of the counted region.
  const auto one_cycle = [&](ATime t) {
    bool ok = true;
    PlayOutcome play_out;
    ok = dev->Play(mu_ac, t, mu_data, false, &play_out).ok() && ok;
    ok = dev->Play(lin_ac, t, lin_data, false, &play_out).ok() && ok;
    for (int step = 0; step < 3; ++step) {
      clock->Advance(256);
      dev->Update();
    }
    std::span<const uint8_t> rec;
    RecordOutcome rec_out;
    const ATime now = dev->GetTime();
    ok = dev->Record(mu_ac, now - 700, 700, false, true, &rec, &rec_out).ok() && ok;
    ok = dev->Record(lin_ac, now - 700, 1400, false, true, &rec, &rec_out).ok() && ok;
    return ok;
  };

  // Warm up: grows the arena buffers to their high-water size and takes
  // the one-time lazy table builds (gain tables, mix tables).
  ATime t = 2048;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(one_cycle(t));
    t += 768;
  }

  // Metrics recording rides the hot path; snapshot the counters that the
  // armed region must advance so "allocation-free" provably includes them.
  const uint64_t updates_before = dev->metrics().updates.Value();
  const uint64_t passthrough_before = dev->metrics().passthrough_plays.Value();
  const uint64_t converted_before = dev->metrics().converted_plays.Value();

  // Tracing also rides the hot path (device-timeline instants from the
  // play/update code); run the armed region with the global ring live so
  // "allocation-free" provably includes TraceRing::Record. The ring itself
  // is constructed (its one allocation) by this call, before arming.
  GlobalTrace().Clear();
  GlobalTrace().Enable(true);
  const uint64_t traced_before = GlobalTrace().recorded();

  g_alloc_count = 0;
  g_alloc_armed = true;
  bool all_ok = true;
  for (int i = 0; i < 1000; ++i) {
    all_ok = one_cycle(t) && all_ok;
    t += 768;
  }
  g_alloc_armed = false;
  GlobalTrace().Enable(false);
  EXPECT_TRUE(all_ok);

  EXPECT_EQ(g_alloc_count, 0u)
      << "steady-state play/record performed heap allocations";
  EXPECT_GT(dev->arena().TotalBytes(), 0u);
  // The armed region must actually have traced (mixing writes at minimum),
  // or the zero-alloc claim about tracing would be vacuous.
  EXPECT_GT(GlobalTrace().recorded(), traced_before);
  GlobalTrace().Clear();

  // Each cycle ran 3 updates, one pass-through (mu-law) play and one
  // converting (lin16) play — all counted, all without allocating.
  EXPECT_EQ(dev->metrics().updates.Value() - updates_before, 3000u);
  EXPECT_EQ(dev->metrics().passthrough_plays.Value() - passthrough_before, 1000u);
  EXPECT_EQ(dev->metrics().converted_plays.Value() - converted_before, 1000u);
}

}  // namespace
}  // namespace af
