// The standard clients driven headlessly: aplay, arecord, apass, aevents,
// ahs/aphone, the answering machine, and the afft spectrogram core.
#include <gtest/gtest.h>

#include "clients/cores.h"
#include "clients/server_runner.h"
#include "dsp/g711.h"
#include "dsp/power.h"
#include "dsp/tones.h"

namespace af {
namespace {

class ClientsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerRunner::Config config;
    config.with_codec = true;
    config.with_phone = true;
    config.realtime = true;
    runner_ = ServerRunner::Start(config);
    ASSERT_NE(runner_, nullptr);
    sink_ = std::make_shared<CaptureSink>();
    source_ = std::make_shared<BufferSource>(1 << 17, 1, kMulawSilence);
    runner_->RunOnLoop([this] {
      runner_->codec()->sim().SetSink(sink_);
      runner_->codec()->sim().SetSource(source_);
    });
    auto conn = runner_->ConnectInProcess();
    ASSERT_TRUE(conn.ok());
    conn_ = conn.take();
  }

  std::unique_ptr<ServerRunner> runner_;
  std::shared_ptr<CaptureSink> sink_;
  std::shared_ptr<BufferSource> source_;
  std::unique_ptr<AFAudioConn> conn_;
};

TEST_F(ClientsTest, AplayPlaysAFile) {
  std::vector<uint8_t> sound(4000);
  for (size_t i = 0; i < sound.size(); ++i) {
    sound[i] = static_cast<uint8_t>(i % 230);
  }
  AplayOptions options;
  options.flush = true;
  auto result = RunAplay(*conn_, options, sound);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().bytes_played, sound.size());

  std::vector<uint8_t> heard;
  runner_->RunOnLoop([&] { heard = sink_->Segment(result.value().start_time, sound.size()); });
  EXPECT_EQ(heard, sound);
}

TEST_F(ClientsTest, AplayNegativeOffsetSkips) {
  std::vector<uint8_t> sound(4000, 0x30);
  AplayOptions options;
  options.time_offset = -0.25;  // discard the first 2000 samples
  options.flush = true;
  auto result = RunAplay(*conn_, options, sound);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().bytes_played, 2000u);
}

TEST_F(ClientsTest, AplayInterruptStopsOnADime) {
  // 8 seconds: more than the 4-second server buffer, so aplay blocks on
  // flow control mid-way - exactly when a user would hit control-C.
  std::vector<uint8_t> sound(64000, MulawFromLinear16(6000));
  std::atomic<bool> interrupt{false};
  AplayOptions options;
  options.interrupt = &interrupt;
  // Interrupt after the first blocks by flipping from another thread.
  std::thread killer([&interrupt] {
    SleepMicros(150000);
    interrupt.store(true);
  });
  const uint64_t start_us = HostMicros();
  auto result = RunAplay(*conn_, options, sound);
  killer.join();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().interrupted);
  // It returned long before the 8 seconds of audio would have played.
  EXPECT_LT(HostMicros() - start_us, 4000000u);
  // And the erased region plays silence: wait past the end, then check.
  SleepMicros(400000);
  std::vector<uint8_t> tail;
  runner_->RunOnLoop([&] { tail = sink_->Segment(result.value().end_time - 800, 400); });
  for (uint8_t v : tail) {
    ASSERT_EQ(v, kMulawSilence);
  }
}

TEST_F(ClientsTest, ArecordFixedLength) {
  // Put a recognizable tone on the "microphone" continuously.
  runner_->RunOnLoop([&] {
    std::vector<uint8_t> tone(16000);
    TonePair({440, -10}, {440, -96}, 8000, 16, tone);
    source_->PutAt(0, tone);
    source_->PutAt(16000, tone);
    source_->PutAt(32000, tone);
  });
  ArecordOptions options;
  options.length_seconds = 0.5;
  options.time_offset = 0.05;
  auto result = RunArecord(*conn_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().sound.size(), 4000u);
  EXPECT_GT(MulawBlockPowerDbm(result.value().sound), -20.0);
}

TEST_F(ClientsTest, ArecordSilenceTermination) {
  // 0.5 s of tone then silence; arecord -silentlevel -40 -silenttime 0.5
  // stops shortly after the tone ends.
  runner_->RunOnLoop([&] {
    std::vector<uint8_t> tone(4000);
    TonePair({700, -10}, {700, -96}, 8000, 16, tone);
    const ATime start = static_cast<ATime>(runner_->codec()->GetTime()) + 1200;
    source_->PutAt(start, tone);
  });
  ArecordOptions options;
  options.silent_level_dbm = -40.0;
  options.silent_time = 0.5;
  options.max_seconds = 5.0;
  options.time_offset = 0.05;
  auto result = RunArecord(*conn_, options);
  ASSERT_TRUE(result.ok());
  const double seconds = result.value().sound.size() / 8000.0;
  EXPECT_LT(seconds, 3.0);  // did not run to the 5 s maximum
  EXPECT_GT(seconds, 0.5);  // but outlived the tone
}

TEST_F(ClientsTest, ApassCopiesBetweenDevices) {
  // Loop audio from the codec (with a tone source) to the phone device,
  // whose "far end" hears it.
  runner_->RunOnLoop([&] {
    std::vector<uint8_t> tone(40000);
    TonePair({600, -10}, {600, -96}, 8000, 16, tone);
    source_->PutAt(0, tone);
  });
  // The phone must be off-hook for audio to cross the line.
  ASSERT_TRUE(RunAhs(*conn_, true).ok());

  ApassOptions options;
  options.input_device = static_cast<int>(runner_->codec_id());
  options.output_device = static_cast<int>(runner_->phone_id());
  options.delay = 0.3;
  options.buffering = 0.1;
  options.iterations = 10;  // one second of audio
  auto result = RunApass(*conn_, *conn_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().iterations, 10u);
  EXPECT_EQ(result.value().resyncs, 0u);  // same clock: no drift

  SleepMicros(500000);  // let the delayed playback drain
  std::vector<uint8_t> far;
  runner_->RunOnLoop([&] { far = runner_->phone()->line().FarEndHeard(); });
  ASSERT_GT(far.size(), 4000u);
  // The middle of what the far end heard is the tone.
  const std::span<const uint8_t> middle(far.data() + far.size() / 2, 2000);
  EXPECT_GT(MulawBlockPowerDbm(middle), -20.0);
}

TEST_F(ClientsTest, ApassResyncsUnderClockDrift) {
  // The sink server's codec crystal runs 3% fast (30000 ppm): the
  // transmit/receive clocks diverge by 240 samples per second, the slip
  // leaves the +-0.02 s anti-jitter band within a second, and apass must
  // resynchronize - the paper's Section 8.3 drift scenario.
  ServerRunner::Config fast_config;
  fast_config.with_codec = true;
  fast_config.realtime = true;
  fast_config.codec_rate_error_ppm = 30000.0;
  auto fast = ServerRunner::Start(fast_config);
  ASSERT_NE(fast, nullptr);
  auto sink_conn_result = fast->ConnectInProcess();
  ASSERT_TRUE(sink_conn_result.ok());
  auto sink_conn = sink_conn_result.take();

  ApassOptions options;
  options.delay = 0.15;
  options.aj = 0.02;
  options.buffering = 0.1;
  options.iterations = 40;  // four seconds of streaming
  auto result = RunApass(*conn_, *sink_conn, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().iterations, 40u);
  EXPECT_GE(result.value().resyncs, 1u);
  EXPECT_LE(result.value().resyncs, 10u);  // resync, not thrash
}

TEST_F(ClientsTest, AeventsSeesRings) {
  runner_->RunOnLoop([&] { runner_->phone()->line().StartIncomingCall(); });
  AeventsOptions options;
  options.device = static_cast<int>(runner_->phone_id());
  options.mask = kPhoneRingMask;
  options.ring_count = 1;
  auto events = RunAevents(*conn_, options);
  ASSERT_TRUE(events.ok());
  ASSERT_FALSE(events.value().empty());
  EXPECT_EQ(events.value().back().type, EventType::kPhoneRing);
  runner_->RunOnLoop([&] { runner_->phone()->line().StopIncomingCall(); });
}

TEST_F(ClientsTest, AphoneDialsAndFarEndDecodes) {
  ASSERT_TRUE(RunAhs(*conn_, true).ok());
  auto end = RunAphone(*conn_, "5551212");
  ASSERT_TRUE(end.ok()) << end.status().ToString();
  // Wait for the dial audio to play out on the line.
  for (;;) {
    auto t = conn_->GetTime(runner_->phone_id());
    ASSERT_TRUE(t.ok());
    if (TimeAtOrAfter(t.value(), end.value() + 800)) {
      break;
    }
    SleepMicros(20000);
  }
  std::string digits;
  runner_->RunOnLoop([&] { digits = runner_->phone()->line().ReceivedDigits(); });
  EXPECT_EQ(digits, "5551212");
  ASSERT_TRUE(RunAhs(*conn_, false).ok());
}

TEST_F(ClientsTest, AnsweringMachineEndToEnd) {
  // Script the far end: it calls, waits, plays a "message", goes quiet.
  runner_->RunOnLoop([&] {
    auto& line = runner_->phone()->line();
    line.StartIncomingCall();
    // The caller's message: 1.5 s of tone starting 2 s from now (just
    // after the machine answers, greets, and beeps).
    std::vector<uint8_t> voice(12000);
    TonePair({500, -8}, {500, -96}, 8000, 16, voice);
    const ATime t = static_cast<ATime>(runner_->phone()->GetTime());
    line.FarEndSendAudio(t + 8000 * 2, voice);
  });

  AnsweringMachineOptions options;
  options.ring_count = 1;
  options.outgoing_message.assign(8000, kMulawSilence);  // 1 s greeting
  TonePair({800, -10}, {800, -96}, 8000, 16,
           std::span<uint8_t>(options.outgoing_message.data() + 2000, 2000));
  options.beep.resize(1600);
  TonePair({1000, -10}, {1000, -96}, 8000, 16, options.beep);
  options.record_max_seconds = 6.0;
  options.silent_level_dbm = -35.0;
  options.silent_time = 3.0;

  auto result = RunAnsweringMachine(*conn_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().answered);
  ASSERT_FALSE(result.value().message.empty());
  // Somewhere in the recorded message the caller's 500 Hz tone appears.
  double peak_power = -96.0;
  const auto& msg = result.value().message;
  for (size_t start = 0; start + 2000 <= msg.size(); start += 1000) {
    peak_power = std::max(
        peak_power, MulawBlockPowerDbm(std::span<const uint8_t>(msg.data() + start, 2000)));
  }
  EXPECT_GT(peak_power, -20.0);
  // And the machine hung up.
  auto phone = conn_->QueryPhone(runner_->phone_id());
  ASSERT_TRUE(phone.ok());
  EXPECT_EQ(phone.value().off_hook, 0u);
}

TEST_F(ClientsTest, AfftSpectrogramFindsTheTone) {
  // 1 kHz at 8 kHz sampling with a 256-point FFT peaks at bin 32.
  std::vector<uint8_t> tone(8000);
  TonePair({1000, -10}, {1000, -96}, 8000, 16, tone);
  AfftOptions options;
  options.fft_length = 256;
  options.stride = 128;
  options.log_scale = false;
  const auto rows = ComputeSpectrogramMulaw(tone, options);
  ASSERT_GT(rows.size(), 50u);
  const auto& mid = rows[rows.size() / 2];
  size_t peak = 1;  // skip DC
  for (size_t i = 2; i < mid.size(); ++i) {
    if (mid[i] > mid[peak]) {
      peak = i;
    }
  }
  EXPECT_EQ(peak, 32u);

  const std::string ascii = RenderSpectrogramAscii(rows);
  EXPECT_FALSE(ascii.empty());
  EXPECT_NE(ascii.find('\n'), std::string::npos);
}

TEST_F(ClientsTest, PickDeviceRespectsPhoneFlag) {
  auto non_phone = PickDevice(*conn_, -1, false);
  ASSERT_TRUE(non_phone.ok());
  EXPECT_EQ(non_phone.value(), runner_->codec_id());
  auto phone = PickDevice(*conn_, -1, true);
  ASSERT_TRUE(phone.ok());
  EXPECT_EQ(phone.value(), runner_->phone_id());
  EXPECT_FALSE(PickDevice(*conn_, 42, false).ok());
}

}  // namespace
}  // namespace af
