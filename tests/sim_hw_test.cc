// The simulated audio hardware: counters, ring consumption to the sink,
// record capture from the source, hardware gain/enable, pass-through.
#include "devices/sim_hw.h"

#include <gtest/gtest.h>

#include "dsp/g711.h"

namespace af {
namespace {

SimulatedAudioHw::Config CodecConfig() {
  SimulatedAudioHw::Config config;
  config.sample_rate = 8000;
  config.ring_frames = 1024;
  config.encoding = AEncodeType::kMu255;
  config.nchannels = 1;
  config.counter_bits = 24;
  return config;
}

TEST(SimHwTest, CounterFollowsClockWithMask) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  SimulatedAudioHw hw(CodecConfig(), clock);
  EXPECT_EQ(hw.ReadCounter(), 0u);
  clock->Advance(5000);
  EXPECT_EQ(hw.ReadCounter(), 5000u);
  // 24-bit counter wraps at 2^24.
  clock->Set((1u << 24) + 17);
  EXPECT_EQ(hw.ReadCounter(), 17u);
}

TEST(SimHwTest, PlayReachesSinkAtTheRightTime) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  SimulatedAudioHw hw(CodecConfig(), clock);
  auto sink = std::make_shared<CaptureSink>();
  hw.SetSink(sink);

  std::vector<uint8_t> pattern(256);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i);
  }
  hw.WritePlay(100, pattern);
  clock->Advance(600);
  hw.ReadCounter();  // advances the simulation

  ASSERT_TRUE(sink->started());
  const auto segment = sink->Segment(100, pattern.size());
  EXPECT_EQ(segment, pattern);
  // Before the written region the sink heard silence.
  const auto before = sink->Segment(50, 10);
  EXPECT_EQ(before, std::vector<uint8_t>(10, kMulawSilence));
}

TEST(SimHwTest, ConsumedRingIsBackfilledWithSilence) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  SimulatedAudioHw hw(CodecConfig(), clock);
  auto sink = std::make_shared<CaptureSink>();
  hw.SetSink(sink);

  std::vector<uint8_t> pattern(64, 0x13);
  hw.WritePlay(0, pattern);
  clock->Advance(100);
  hw.ReadCounter();
  // One full ring later (same slots), without a new write, the hardware
  // must play silence, not the stale pattern.
  clock->Advance(1024);
  hw.ReadCounter();
  const auto later = sink->Segment(1024, 64);
  EXPECT_EQ(later, std::vector<uint8_t>(64, kMulawSilence));
}

TEST(SimHwTest, RecordCapturesSource) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  SimulatedAudioHw hw(CodecConfig(), clock);
  auto source = std::make_shared<BufferSource>(4096, 1, kMulawSilence);
  hw.SetSource(source);

  std::vector<uint8_t> spoken(200, 0x55);
  source->PutAt(300, spoken);
  clock->Advance(700);
  hw.ReadCounter();

  std::vector<uint8_t> out(200);
  hw.ReadRecord(300, out);
  EXPECT_EQ(out, spoken);
  std::vector<uint8_t> quiet(50);
  hw.ReadRecord(100, quiet);
  EXPECT_EQ(quiet, std::vector<uint8_t>(50, kMulawSilence));
}

TEST(SimHwTest, OutputDisableMutes) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  SimulatedAudioHw hw(CodecConfig(), clock);
  auto sink = std::make_shared<CaptureSink>();
  hw.SetSink(sink);
  hw.SetOutputEnabled(false);

  std::vector<uint8_t> pattern(64, 0x21);
  hw.WritePlay(0, pattern);
  clock->Advance(128);
  hw.ReadCounter();
  EXPECT_EQ(sink->Segment(0, 64), std::vector<uint8_t>(64, kMulawSilence));
}

TEST(SimHwTest, OutputGainAttenuates) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  SimulatedAudioHw hw(CodecConfig(), clock);
  auto sink = std::make_shared<CaptureSink>();
  hw.SetSink(sink);
  hw.SetOutputGainDb(-12);

  const uint8_t loud = MulawFromLinear16(16000);
  hw.WritePlay(0, std::vector<uint8_t>(64, loud));
  clock->Advance(128);
  hw.ReadCounter();
  const auto heard = sink->Segment(0, 64);
  ASSERT_EQ(heard.size(), 64u);
  EXPECT_NEAR(MulawToLinear16(heard[0]), 16000.0 / 4.0, 500);
}

TEST(SimHwTest, PassThroughFeedsPeerOutput) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  SimulatedAudioHw phone_hw(CodecConfig(), clock);
  SimulatedAudioHw local_hw(CodecConfig(), clock);
  auto phone_in = std::make_shared<BufferSource>(4096, 1, kMulawSilence);
  auto local_out = std::make_shared<CaptureSink>();
  phone_hw.SetSource(phone_in);
  local_hw.SetSink(local_out);
  phone_hw.SetPassThroughPeer(&local_hw);

  const uint8_t voice = MulawFromLinear16(8000);
  phone_in->PutAt(0, std::vector<uint8_t>(512, voice));
  clock->Advance(256);
  phone_hw.ReadCounter();  // captures input, injects into the peer
  local_hw.ReadCounter();  // peer delivers to its sink

  const auto heard = local_out->Segment(0, 128);
  ASSERT_FALSE(heard.empty());
  EXPECT_NEAR(MulawToLinear16(heard[64]), 8000, 300);
}

TEST(CaptureSinkTest, SegmentBeforeStartIsEmpty) {
  CaptureSink sink;
  sink.Consume(1000, std::vector<uint8_t>{1, 2, 3});
  EXPECT_TRUE(sink.Segment(900, 3).empty());
  EXPECT_EQ(sink.Segment(1001, 2), (std::vector<uint8_t>{2, 3}));
}

TEST(LoopbackWireTest, DelayedEcho) {
  LoopbackWire wire(256, 1, kMulawSilence, /*delay_frames=*/16);
  std::vector<uint8_t> data = {5, 6, 7, 8};
  wire.Consume(100, data);
  std::vector<uint8_t> out(4);
  wire.Generate(116, out);  // 16 frames later
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace af
