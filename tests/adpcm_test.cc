// IMA ADPCM (SAMPLE_ADPCM32): codec quality, packing, and the end-to-end
// conversion module playing compressed audio onto a mu-law device.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <numbers>

#include "client/audio_context.h"
#include "clients/server_runner.h"
#include "dsp/adpcm.h"
#include "dsp/g711.h"
#include "dsp/power.h"

namespace af {
namespace {

std::vector<int16_t> Sine(double freq, double peak, unsigned rate, size_t n) {
  std::vector<int16_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<int16_t>(peak * std::sin(2.0 * std::numbers::pi * freq * i / rate));
  }
  return out;
}

TEST(AdpcmTest, HalvesTheBitrate) {
  const auto samples = Sine(440, 10000, 8000, 801);
  const auto packed = AdpcmEncode(samples);
  EXPECT_EQ(packed.size(), 401u);  // 4 bits per 16-bit sample
}

TEST(AdpcmTest, SineSurvivesRoundTripWithGoodSnr) {
  const auto samples = Sine(440, 10000, 8000, 4000);
  const auto packed = AdpcmEncode(samples);
  const auto decoded = AdpcmDecode(packed, samples.size());
  ASSERT_EQ(decoded.size(), samples.size());

  double signal = 0;
  double noise = 0;
  // Skip the adaptation ramp at the start.
  for (size_t i = 200; i < samples.size(); ++i) {
    signal += static_cast<double>(samples[i]) * samples[i];
    const double e = samples[i] - decoded[i];
    noise += e * e;
  }
  const double snr_db = 10.0 * std::log10(signal / (noise + 1e-9));
  EXPECT_GT(snr_db, 25.0);  // IMA ADPCM is good for ~30 dB on tones
}

TEST(AdpcmTest, StepIndexAdaptsAndClamps) {
  AdpcmState state;
  // Hammer with full-scale alternation: the index must climb and clamp.
  for (int i = 0; i < 200; ++i) {
    AdpcmEncodeSample(i % 2 == 0 ? 32767 : -32768, &state);
  }
  EXPECT_EQ(state.step_index, 88);
  // Silence drives it back down.
  for (int i = 0; i < 500; ++i) {
    AdpcmEncodeSample(0, &state);
  }
  EXPECT_EQ(state.step_index, 0);
}

TEST(AdpcmTest, EncoderDecoderStatesStayInLockstep) {
  // The decoder reconstructs the encoder's predictor path exactly.
  std::mt19937 rng(7);
  AdpcmState enc;
  AdpcmState dec;
  for (int i = 0; i < 2000; ++i) {
    const int16_t sample = static_cast<int16_t>(rng() % 60000 - 30000);
    const uint8_t code = AdpcmEncodeSample(sample, &enc);
    AdpcmDecodeSample(code, &dec);
    ASSERT_EQ(enc.predictor, dec.predictor);
    ASSERT_EQ(enc.step_index, dec.step_index);
  }
}

TEST(AdpcmTest, OddLengthPacking) {
  const std::vector<int16_t> three = {1000, -1000, 500};
  const auto packed = AdpcmEncode(three);
  EXPECT_EQ(packed.size(), 2u);
  const auto decoded = AdpcmDecode(packed, 3);
  EXPECT_EQ(decoded.size(), 3u);
}

TEST(AdpcmServerTest, CompressedPlayOnMulawDevice) {
  ServerRunner::Config config;
  config.with_codec = true;
  auto runner = ServerRunner::Start(config);
  ASSERT_NE(runner, nullptr);
  auto sink = std::make_shared<CaptureSink>();
  runner->RunOnLoop([&] { runner->codec()->sim().SetSink(sink); });
  auto conn = runner->ConnectInProcess().take();

  ACAttributes attrs;
  attrs.encoding = AEncodeType::kAdpcm32;
  attrs.channels = 1;
  auto ac = conn->CreateAC(0, kACEncodingType | kACChannels, attrs);
  ASSERT_TRUE(ac.ok());

  // One second of 440 Hz, ADPCM compressed: 4000 bytes on the wire for
  // 8000 samples of audio.
  const auto pcm = Sine(440, 12000, 8000, 8000);
  const auto compressed = AdpcmEncode(pcm);
  ASSERT_EQ(compressed.size(), 4000u);

  const ATime start = conn->GetTime(0).value() + 800;
  auto played = ac.value()->PlaySamples(start, compressed);
  ASSERT_TRUE(played.ok()) << played.status().ToString();

  // Wait for it to play, then check the speaker heard a full second of
  // tone at the right level.
  for (;;) {
    auto t = conn->GetTime(0);
    ASSERT_TRUE(t.ok());
    if (TimeAtOrAfter(t.value(), start + 8000 + 1600)) {
      break;
    }
    SleepMicros(20000);
  }
  std::vector<uint8_t> heard;
  runner->RunOnLoop([&] { heard = sink->Segment(start + 1000, 6000); });
  ASSERT_EQ(heard.size(), 6000u);
  EXPECT_NEAR(MulawBlockPowerDbm(heard),
              Lin16BlockPowerDbm(std::span<const int16_t>(pcm.data() + 1000, 6000)), 1.0);
}

TEST(AdpcmServerTest, CompressedRecordFromMulawDevice) {
  ServerRunner::Config config;
  config.with_codec = true;
  auto runner = ServerRunner::Start(config);
  ASSERT_NE(runner, nullptr);
  auto source = std::make_shared<BufferSource>(1 << 16, 1, kMulawSilence);
  runner->RunOnLoop([&] { runner->codec()->sim().SetSource(source); });
  auto conn = runner->ConnectInProcess().take();

  ACAttributes attrs;
  attrs.encoding = AEncodeType::kAdpcm32;
  attrs.channels = 1;
  auto ac = conn->CreateAC(0, kACEncodingType | kACChannels, attrs);
  ASSERT_TRUE(ac.ok());

  // Gate recording on, put a tone on the microphone, then record it
  // compressed and verify the decompressed power.
  std::vector<uint8_t> warmup(100);
  ASSERT_TRUE(ac.value()->RecordSamples(0, warmup, false).ok());

  const auto pcm = Sine(700, 11000, 8000, 6000);
  std::vector<uint8_t> mic(pcm.size());
  EncodeMulawBlock(pcm, mic);
  const ATime speak_at = conn->GetTime(0).value() + 400;
  runner->RunOnLoop([&] { source->PutAt(speak_at, mic); });

  std::vector<uint8_t> compressed(3000);  // 6000 samples at 4 bits
  auto rec = ac.value()->RecordSamples(speak_at, compressed, /*block=*/true);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().actual_bytes, 3000u);

  const auto decoded = AdpcmDecode(compressed, 6000);
  EXPECT_NEAR(Lin16BlockPowerDbm(decoded), Lin16BlockPowerDbm(pcm), 1.5);
}

}  // namespace
}  // namespace af
