// The LineServer: packet codec, firmware behavior, the Als-style device
// over a lossless and a lossy simulated channel.
#include <gtest/gtest.h>

#include "devices/lineserver_device.h"
#include "dsp/g711.h"

namespace af {
namespace {

TEST(LsPacketTest, RoundTrip) {
  LsPacket packet;
  packet.seq = 77;
  packet.time = 0xABCD1234u;
  packet.function = LsFunction::kRecord;
  packet.param = 512;
  packet.data = {1, 2, 3};
  const auto raw = packet.Encode();
  EXPECT_EQ(raw.size(), LsPacket::kHeaderBytes + 3);

  LsPacket decoded;
  ASSERT_TRUE(LsPacket::Decode(raw, &decoded));
  EXPECT_EQ(decoded.seq, 77u);
  EXPECT_EQ(decoded.time, 0xABCD1234u);
  EXPECT_EQ(decoded.function, LsFunction::kRecord);
  EXPECT_EQ(decoded.param, 512u);
  EXPECT_EQ(decoded.data, packet.data);
}

TEST(LsPacketTest, ShortPacketRejected) {
  std::vector<uint8_t> runt(8, 0);
  LsPacket decoded;
  EXPECT_FALSE(LsPacket::Decode(runt, &decoded));
}

class FirmwareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_shared<ManualSampleClock>(8000);
    auto [host, device] = SimDatagramChannel::CreatePair();
    host_ = std::move(host);
    firmware_ = std::make_unique<LineServerFirmware>(std::move(device), clock_);
  }

  LsPacket Transact(LsPacket packet) {
    packet.seq = next_seq_++;
    host_->Send(packet.Encode());
    firmware_->ProcessPending();
    const auto raw = host_->Receive();
    LsPacket reply;
    EXPECT_TRUE(LsPacket::Decode(raw, &reply));
    EXPECT_EQ(reply.seq, packet.seq);
    return reply;
  }

  std::shared_ptr<ManualSampleClock> clock_;
  std::unique_ptr<SimDatagramChannel> host_;
  std::unique_ptr<LineServerFirmware> firmware_;
  uint32_t next_seq_ = 1;
};

TEST_F(FirmwareTest, LoopbackEchoesAndTimestamps) {
  clock_->Advance(4321);
  LsPacket packet;
  packet.function = LsFunction::kLoopback;
  packet.data = {9, 9, 9};
  const LsPacket reply = Transact(packet);
  EXPECT_EQ(reply.data, packet.data);
  EXPECT_EQ(reply.time, 4321u);
}

TEST_F(FirmwareTest, RegisterReadWrite) {
  LsPacket write;
  write.function = LsFunction::kWriteCodecReg;
  write.param = (static_cast<uint32_t>(LsCodecReg::kOutputGain) << 16) | 12;
  Transact(write);
  EXPECT_EQ(firmware_->Register(LsCodecReg::kOutputGain), 12u);

  LsPacket read;
  read.function = LsFunction::kReadCodecReg;
  read.param = static_cast<uint32_t>(LsCodecReg::kOutputGain);
  EXPECT_EQ(Transact(read).param, 12u);
}

TEST_F(FirmwareTest, PlayThenRecordViaLoopbackWire) {
  auto wire = std::make_shared<LoopbackWire>(4096, 1, kMulawSilence, 0);
  firmware_->SetSink(wire);
  firmware_->SetSource(wire);

  LsPacket play;
  play.function = LsFunction::kPlay;
  play.time = 100;
  play.data.assign(200, 0x42);
  Transact(play);

  clock_->Advance(400);  // the CODEC interrupt consumes [0, 400)
  LsPacket record;
  record.function = LsFunction::kRecord;
  record.time = 100;
  record.param = 200;
  const LsPacket reply = Transact(record);
  EXPECT_EQ(reply.data, std::vector<uint8_t>(200, 0x42));
}

TEST_F(FirmwareTest, ResetClearsState) {
  LsPacket write;
  write.function = LsFunction::kWriteCodecReg;
  write.param = (static_cast<uint32_t>(LsCodecReg::kInputGain) << 16) | 9;
  Transact(write);
  LsPacket reset;
  reset.function = LsFunction::kReset;
  Transact(reset);
  EXPECT_EQ(firmware_->Register(LsCodecReg::kInputGain), 0u);
  EXPECT_EQ(firmware_->Register(LsCodecReg::kOutputEnable), 1u);
}

class LineServerDeviceTest : public ::testing::Test {
 protected:
  void Init(double loss_to_device, double loss_to_server) {
    clock_ = std::make_shared<ManualSampleClock>(8000);
    LineServerDevice::Config config;
    config.hw.refresh_interval_us = 0;  // deterministic estimates
    config.loss_to_device = loss_to_device;
    config.loss_to_server = loss_to_server;
    dev_ = LineServerDevice::Create(clock_, config);
    wire_ = std::make_shared<LoopbackWire>(1 << 16, 1, kMulawSilence, 0);
    dev_->firmware().SetSink(wire_);
    dev_->firmware().SetSource(wire_);
    dev_->Update();
    ac_.device = dev_.get();
    ac_.attrs.channels = 1;
    ASSERT_TRUE(dev_->MakeACOps(ac_.attrs, &ac_.ops).ok());
  }

  void RunFor(uint64_t samples) {
    while (samples > 0) {
      const uint64_t n = std::min<uint64_t>(512, samples);
      clock_->Advance(n);
      dev_->firmware().ProcessPending();  // the peripheral's interrupts
      dev_->Update();
      samples -= n;
    }
  }

  std::shared_ptr<ManualSampleClock> clock_;
  std::unique_ptr<LineServerDevice> dev_;
  std::shared_ptr<LoopbackWire> wire_;
  ServerAC ac_;
};

TEST_F(LineServerDeviceTest, TimeEstimateTracksFirmware) {
  Init(0, 0);
  clock_->Advance(5000);
  const ATime t = dev_->GetTime();
  EXPECT_EQ(t, 5000u);
}

TEST_F(LineServerDeviceTest, PlayLoopsBackToRecord) {
  Init(0, 0);
  std::vector<uint8_t> pattern(1500);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i % 100 + 20);
  }
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(ac_, 2000, pattern, false, &outcome).ok());

  dev_->AddRecordRef();
  RunFor(6000);
  std::span<const uint8_t> out;
  RecordOutcome rec;
  ASSERT_TRUE(dev_->Record(ac_, 2000, pattern.size(), false, true, &out, &rec).ok());
  EXPECT_EQ(std::vector<uint8_t>(out.begin(), out.end()), pattern);
}

TEST_F(LineServerDeviceTest, LossyChannelDegradesButDoesNotHang) {
  Init(0.3, 0.3);
  std::vector<uint8_t> pattern(4000, 0x37);
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(ac_, 2000, pattern, false, &outcome).ok());
  dev_->AddRecordRef();
  RunFor(10000);
  std::span<const uint8_t> out;
  RecordOutcome rec;
  ASSERT_TRUE(dev_->Record(ac_, 2000, pattern.size(), false, true, &out, &rec).ok());
  ASSERT_EQ(out.size(), pattern.size());
  // Some audio got through; some was lost to silence; nothing corrupted.
  size_t matched = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] == 0x37) {
      ++matched;
    } else {
      EXPECT_EQ(out[i], kMulawSilence) << "at " << i;
    }
  }
  EXPECT_GT(matched, pattern.size() / 4);
  EXPECT_LT(matched, pattern.size());
  EXPECT_GT(dev_->ls_hw().record_losses() + matched, 0u);
}

TEST_F(LineServerDeviceTest, RegisterWritesSurviveLoss) {
  Init(0.4, 0.4);
  // Register ops are retried (unlike audio); with 3 tries at 40% loss the
  // write almost surely lands. Verify against firmware state.
  ASSERT_TRUE(dev_->SetOutputGain(7).ok());
  EXPECT_EQ(dev_->firmware().Register(LsCodecReg::kOutputGain), 7u);
}

}  // namespace
}  // namespace af
