// G.711 codec correctness: round-trip accuracy, monotonicity, silence
// values, table consistency, and the mixing/gain/power tables built on it.
#include "dsp/g711.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/gain.h"
#include "dsp/mix.h"
#include "dsp/power.h"

namespace af {
namespace {

TEST(G711Test, MulawSilenceEncodesZero) {
  EXPECT_EQ(MulawFromLinear16(0), kMulawSilence);
  EXPECT_EQ(MulawToLinear16(kMulawSilence), 0);
}

TEST(G711Test, AlawSilenceEncodesZero) {
  EXPECT_EQ(AlawFromLinear16(0), kAlawSilence);
  EXPECT_EQ(AlawToLinear16(kAlawSilence), 8);  // A-law has no exact zero code
}

TEST(G711Test, MulawFullScale) {
  EXPECT_EQ(MulawToLinear16(0x80), kG711Clip16);   // max positive code
  EXPECT_EQ(MulawToLinear16(0x00), -kG711Clip16);  // max negative code
  EXPECT_EQ(MulawFromLinear16(32767), 0x80);
  EXPECT_EQ(MulawFromLinear16(-32768), 0x00);
}

TEST(G711Test, MulawDecodeEncodeIsIdentity) {
  // Every code word must survive a decode/encode round trip, except that
  // mu-law has two zero codes (0x7F is "negative zero") and the encoder
  // canonicalizes zero to 0xFF.
  for (int code = 0; code < 256; ++code) {
    const int16_t linear = MulawToLinear16(static_cast<uint8_t>(code));
    const uint8_t reencoded = MulawFromLinear16(linear);
    if (code == 0x7F) {
      EXPECT_EQ(reencoded, kMulawSilence);
      continue;
    }
    EXPECT_EQ(reencoded, code) << "code " << code << " -> " << linear;
  }
}

TEST(G711Test, AlawDecodeEncodeIsIdentity) {
  for (int code = 0; code < 256; ++code) {
    const int16_t linear = AlawToLinear16(static_cast<uint8_t>(code));
    EXPECT_EQ(AlawFromLinear16(linear), code) << "code " << code << " -> " << linear;
  }
}

TEST(G711Test, MulawQuantizationErrorIsLogarithmic) {
  // Relative error must stay small across the dynamic range (mu-law is
  // roughly a 14-bit log format: worst-case step is ~1/33 of the value).
  for (int v = 64; v <= 32000; v = v * 5 / 4) {
    const int16_t sample = static_cast<int16_t>(v);
    // Tolerance: the segment step is ~v/16 plus the 4x loss from the
    // 16->14-bit shift on encode.
    const int16_t rt = MulawToLinear16(MulawFromLinear16(sample));
    EXPECT_NEAR(rt, sample, std::max(16.0, v * 0.07)) << "v=" << v;
    const int16_t neg = MulawToLinear16(MulawFromLinear16(static_cast<int16_t>(-v)));
    EXPECT_NEAR(neg, -sample, std::max(16.0, v * 0.07)) << "v=-" << v;
  }
}

TEST(G711Test, MulawEncodeIsMonotonic) {
  int16_t prev = MulawToLinear16(MulawFromLinear16(-32768));
  for (int v = -32768; v <= 32767; v += 61) {
    const int16_t rt = MulawToLinear16(MulawFromLinear16(static_cast<int16_t>(v)));
    EXPECT_GE(rt, prev) << "non-monotonic at " << v;
    prev = rt;
  }
}

TEST(G711Test, TablesMatchFunctions) {
  const auto& dec_u = MulawToLin16Table();
  const auto& dec_a = AlawToLin16Table();
  for (int code = 0; code < 256; ++code) {
    EXPECT_EQ(dec_u[code], MulawToLinear16(static_cast<uint8_t>(code)));
    EXPECT_EQ(dec_a[code], AlawToLinear16(static_cast<uint8_t>(code)));
  }
  const auto& enc_u = Lin14ToMulawTable();
  for (int i = 0; i < 16384; i += 7) {
    const int16_t linear = static_cast<int16_t>((i - 8192) << 2);
    EXPECT_EQ(enc_u[i], MulawFromLinear16(linear));
  }
}

TEST(G711Test, CrossFormatTranscode) {
  // Mu-law -> A-law -> mu-law should come back close (formats have
  // different segment layouts so exactness is not guaranteed).
  for (int code = 0; code < 256; ++code) {
    const uint8_t alaw = MulawToAlaw(static_cast<uint8_t>(code));
    const uint8_t back = AlawToMulaw(alaw);
    const int orig = MulawToLinear16(static_cast<uint8_t>(code));
    const int rt = MulawToLinear16(back);
    EXPECT_NEAR(rt, orig, std::max(64.0, std::abs(orig) * 0.15)) << "code " << code;
  }
}

TEST(G711Test, BlockConversionsMatchScalar) {
  std::vector<uint8_t> codes(256);
  for (int i = 0; i < 256; ++i) {
    codes[i] = static_cast<uint8_t>(i);
  }
  std::vector<int16_t> linear(256);
  DecodeMulawBlock(codes, linear);
  std::vector<uint8_t> back(256);
  EncodeMulawBlock(linear, back);
  for (int i = 0; i < 256; ++i) {
    if (i == 0x7F) {
      EXPECT_EQ(back[i], kMulawSilence);  // negative zero canonicalizes
      continue;
    }
    EXPECT_EQ(back[i], codes[i]);
  }
}

// --- mixing ----------------------------------------------------------------

TEST(MixTest, MixingSilenceIsIdentity) {
  for (int code = 0; code < 256; ++code) {
    const uint8_t mixed = MixMulaw(static_cast<uint8_t>(code), kMulawSilence);
    EXPECT_EQ(MulawToLinear16(mixed), MulawToLinear16(static_cast<uint8_t>(code)));
  }
}

TEST(MixTest, MixIsCommutative) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 0; b < 256; b += 7) {
      EXPECT_EQ(MixMulaw(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                MixMulaw(static_cast<uint8_t>(b), static_cast<uint8_t>(a)));
    }
  }
}

TEST(MixTest, MixTableMatchesFunction) {
  const uint8_t* table = MulawMixTable();
  for (int a = 0; a < 256; a += 3) {
    for (int b = 0; b < 256; b += 3) {
      EXPECT_EQ(table[(a << 8) | b], MixMulaw(static_cast<uint8_t>(a), static_cast<uint8_t>(b)));
    }
  }
}

TEST(MixTest, Lin16MixSaturates) {
  EXPECT_EQ(MixLin16(30000, 30000), 32767);
  EXPECT_EQ(MixLin16(-30000, -30000), -32768);
  EXPECT_EQ(MixLin16(1000, -1000), 0);
}

// --- gain ---------------------------------------------------------------------

TEST(GainTest, ZeroDbIsNearIdentity) {
  const GainTable& table = MulawGainTable(0);
  for (int code = 0; code < 256; ++code) {
    if (code == 0x7F) {
      EXPECT_EQ(table[code], kMulawSilence);  // negative zero canonicalizes
      continue;
    }
    EXPECT_EQ(table[code], code);
  }
}

TEST(GainTest, MinusSixDbHalvesAmplitude) {
  const GainTable& table = MulawGainTable(-6);
  for (int code = 0; code < 256; code += 11) {
    const double orig = MulawToLinear16(static_cast<uint8_t>(code));
    const double scaled = MulawToLinear16(table[code]);
    if (std::abs(orig) > 256) {
      EXPECT_NEAR(scaled / orig, 0.501, 0.06) << "code " << code;
    }
  }
}

TEST(GainTest, BoostSaturatesInsteadOfWrapping) {
  const GainTable& table = MulawGainTable(30);
  // Full-scale boosted by 30 dB must clip to full scale, not wrap.
  EXPECT_EQ(MulawToLinear16(table[0x80]), kG711Clip16);
  EXPECT_EQ(MulawToLinear16(table[0x00]), -kG711Clip16);
}

TEST(GainTest, Lin16GainMatchesFactor) {
  std::vector<int16_t> samples = {1000, -1000, 20000, -20000, 0};
  ApplyLin16Gain(-6.0, samples);
  EXPECT_NEAR(samples[0], 501, 2);
  EXPECT_NEAR(samples[1], -501, 2);
  EXPECT_EQ(samples[4], 0);
}

// --- power ----------------------------------------------------------------------

TEST(PowerTest, SilenceIsFloor) {
  std::vector<uint8_t> silence(800, kMulawSilence);
  EXPECT_EQ(MulawBlockPowerDbm(silence), kPowerFloorDbm);
}

TEST(PowerTest, DigitalMilliwattSineIsNearZeroDbm) {
  // A sine whose RMS equals the digital milliwatt must measure ~0 dBm0.
  const double peak = DigitalMilliwattRms16() * std::numbers::sqrt2;
  std::vector<uint8_t> tone(8000);
  for (size_t i = 0; i < tone.size(); ++i) {
    const double v = peak * std::sin(2.0 * std::numbers::pi * 1000.0 * i / 8000.0);
    tone[i] = MulawFromLinear16(static_cast<int16_t>(std::lround(v)));
  }
  EXPECT_NEAR(MulawBlockPowerDbm(tone), 0.0, 0.2);
}

TEST(PowerTest, QuieterSignalMeasuresLower) {
  std::vector<int16_t> loud(8000);
  std::vector<int16_t> quiet(8000);
  for (size_t i = 0; i < loud.size(); ++i) {
    const double v = std::sin(2.0 * std::numbers::pi * 440.0 * i / 8000.0);
    loud[i] = static_cast<int16_t>(20000 * v);
    quiet[i] = static_cast<int16_t>(2000 * v);
  }
  EXPECT_NEAR(Lin16BlockPowerDbm(loud) - Lin16BlockPowerDbm(quiet), 20.0, 0.1);
}

}  // namespace
}  // namespace af
