// The telephone device and virtual line: hookswitch, ring cadence, loop
// current, DTMF decode from line audio, flash, and pass-through.
#include <gtest/gtest.h>

#include "devices/hifi_device.h"
#include "devices/phone_device.h"
#include "dsp/dtmf.h"
#include "dsp/g711.h"

namespace af {
namespace {

class PhoneDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_shared<ManualSampleClock>(8000);
    dev_ = PhoneDevice::Create(clock_);
    dev_->SetEventSink([this](AEvent event) { events_.push_back(event); });
    dev_->Update();
    ac_.device = dev_.get();
    ac_.attrs.channels = 1;
    ASSERT_TRUE(dev_->MakeACOps(ac_.attrs, &ac_.ops).ok());
  }

  void RunFor(uint64_t samples) {
    while (samples > 0) {
      const uint64_t n = std::min<uint64_t>(256, samples);
      clock_->Advance(n);
      dev_->Update();
      samples -= n;
    }
  }

  int CountEvents(EventType type, int detail = -1) const {
    int count = 0;
    for (const AEvent& event : events_) {
      if (event.type == type && (detail < 0 || event.detail == detail)) {
        ++count;
      }
    }
    return count;
  }

  std::shared_ptr<ManualSampleClock> clock_;
  std::unique_ptr<PhoneDevice> dev_;
  std::vector<AEvent> events_;
  ServerAC ac_;
};

TEST_F(PhoneDeviceTest, DescribesPhoneWiring) {
  EXPECT_EQ(dev_->desc().type, DevType::kPhone);
  EXPECT_EQ(dev_->desc().inputs_from_phone, 1u);
  EXPECT_EQ(dev_->desc().outputs_to_phone, 1u);
}

TEST_F(PhoneDeviceTest, HookSwitchEventsAndState) {
  bool off_hook = true;
  bool loop = true;
  ASSERT_TRUE(dev_->QueryPhone(&off_hook, &loop).ok());
  EXPECT_FALSE(off_hook);
  EXPECT_FALSE(loop);

  ASSERT_TRUE(dev_->HookSwitch(true).ok());
  ASSERT_TRUE(dev_->QueryPhone(&off_hook, &loop).ok());
  EXPECT_TRUE(off_hook);
  EXPECT_EQ(CountEvents(EventType::kHookSwitch, kStateOn), 1);

  // Idempotent: same state, no new event.
  ASSERT_TRUE(dev_->HookSwitch(true).ok());
  EXPECT_EQ(CountEvents(EventType::kHookSwitch, kStateOn), 1);

  ASSERT_TRUE(dev_->HookSwitch(false).ok());
  EXPECT_EQ(CountEvents(EventType::kHookSwitch, kStateOff), 1);
}

TEST_F(PhoneDeviceTest, RingCadence) {
  dev_->line().StartIncomingCall();
  RunFor(8000 * 13);  // 13 seconds: on(2) off(4) on(2) off(4) on...
  EXPECT_GE(CountEvents(EventType::kPhoneRing, kStateOn), 3);
  EXPECT_GE(CountEvents(EventType::kPhoneRing, kStateOff), 2);
}

TEST_F(PhoneDeviceTest, AnsweringStopsTheRing) {
  dev_->line().StartIncomingCall();
  RunFor(8000);
  EXPECT_EQ(CountEvents(EventType::kPhoneRing, kStateOn), 1);
  ASSERT_TRUE(dev_->HookSwitch(true).ok());
  const int rings_at_answer = CountEvents(EventType::kPhoneRing, kStateOn);
  RunFor(8000 * 10);
  EXPECT_EQ(CountEvents(EventType::kPhoneRing, kStateOn), rings_at_answer);
}

TEST_F(PhoneDeviceTest, LoopCurrentEvents) {
  dev_->line().SetExtensionOffHook(true);
  EXPECT_EQ(CountEvents(EventType::kPhoneLoop, kStateOn), 1);
  dev_->line().SetExtensionOffHook(false);
  EXPECT_EQ(CountEvents(EventType::kPhoneLoop, kStateOff), 1);
}

TEST_F(PhoneDeviceTest, FarEndDtmfProducesEvents) {
  ASSERT_TRUE(dev_->HookSwitch(true).ok());
  dev_->line().FarEndSendDigits(4000, "42#");
  RunFor(8000 * 2);
  EXPECT_EQ(CountEvents(EventType::kPhoneDTMF, '4'), 1);
  EXPECT_EQ(CountEvents(EventType::kPhoneDTMF, '2'), 1);
  EXPECT_EQ(CountEvents(EventType::kPhoneDTMF, '#'), 1);
}

TEST_F(PhoneDeviceTest, OnHookHearsNoLineAudio) {
  dev_->line().FarEndSendDigits(2000, "5");
  RunFor(8000 * 2);
  EXPECT_EQ(CountEvents(EventType::kPhoneDTMF), 0);
}

TEST_F(PhoneDeviceTest, DialedAudioReachesFarEnd) {
  ASSERT_TRUE(dev_->HookSwitch(true).ok());
  RunFor(800);
  const ATime now = dev_->GetTime();
  const auto dial_audio = SynthesizeDialString("911", 8000);
  PlayOutcome outcome;
  ASSERT_TRUE(dev_->Play(ac_, now + 400, dial_audio, false, &outcome).ok());
  RunFor(dial_audio.size() + 4000);
  EXPECT_EQ(dev_->line().ReceivedDigits(), "911");
}

TEST_F(PhoneDeviceTest, FlashHookDropsAndRestores) {
  ASSERT_TRUE(dev_->HookSwitch(true).ok());
  ASSERT_TRUE(dev_->FlashHook(300).ok());
  bool off_hook = true;
  bool loop = false;
  ASSERT_TRUE(dev_->QueryPhone(&off_hook, &loop).ok());
  EXPECT_FALSE(off_hook);  // flashing: momentarily on-hook
  RunFor(8000);            // 1 second > 300 ms
  ASSERT_TRUE(dev_->QueryPhone(&off_hook, &loop).ok());
  EXPECT_TRUE(off_hook);  // restored
}

TEST_F(PhoneDeviceTest, FlashRequiresOffHook) {
  EXPECT_EQ(dev_->FlashHook(300).code(), AfError::kBadMatch);
}

TEST(PhonePassThroughTest, PhoneAudioReachesLocalSpeaker) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  auto phone = PhoneDevice::Create(clock);
  auto local = CodecDevice::Create(clock);
  auto speaker = std::make_shared<CaptureSink>();
  local->sim().SetSink(speaker);
  phone->Update();
  local->Update();

  ASSERT_TRUE(phone->SetPassThrough(local.get(), true).ok());
  ASSERT_TRUE(phone->HookSwitch(true).ok());
  const uint8_t voice = MulawFromLinear16(9000);
  phone->line().FarEndSendAudio(1000, std::vector<uint8_t>(2000, voice));

  for (int i = 0; i < 20; ++i) {
    clock->Advance(256);
    phone->Update();
    local->Update();
  }
  const auto heard = speaker->Segment(1500, 500);
  ASSERT_EQ(heard.size(), 500u);
  EXPECT_NEAR(MulawToLinear16(heard[100]), 9000, 500);

  // Disabling stops the path.
  ASSERT_TRUE(phone->SetPassThrough(local.get(), false).ok());
  speaker->Clear();
  phone->line().FarEndSendAudio(clock->Now() + 1000, std::vector<uint8_t>(2000, voice));
  for (int i = 0; i < 20; ++i) {
    clock->Advance(256);
    phone->Update();
    local->Update();
  }
  for (uint8_t v : speaker->data()) {
    ASSERT_EQ(v, kMulawSilence);
  }
}

TEST(PhonePassThroughTest, NonCodecPeerIsBadMatch) {
  auto clock = std::make_shared<ManualSampleClock>(8000);
  auto phone = PhoneDevice::Create(clock);
  auto hifi_clock = std::make_shared<ManualSampleClock>(48000);
  auto hifi = HiFiDevice::Create(hifi_clock);
  EXPECT_EQ(phone->SetPassThrough(hifi.get(), true).code(), AfError::kBadMatch);
}

}  // namespace
}  // namespace af
