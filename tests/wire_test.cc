// Wire protocol round trips: every request and reply in both byte orders,
// the setup handshake, events, atoms, and malformed-input behavior.
#include <gtest/gtest.h>

#include "proto/atoms.h"
#include "proto/events.h"
#include "proto/requests.h"
#include "proto/setup.h"
#include "proto/wire.h"

namespace af {
namespace {

class WireOrderTest : public ::testing::TestWithParam<WireOrder> {
 protected:
  WireOrder order() const { return GetParam(); }

  // Encodes a request with framing, decodes the header and body back.
  template <typename Req>
  Req RoundTrip(Opcode op, const Req& req) {
    WireWriter w(order());
    const size_t header = BeginRequest(w, op);
    req.Encode(w);
    EndRequest(w, header);

    WireReader r(w.data(), order());
    RequestHeader decoded_header;
    EXPECT_TRUE(DecodeRequestHeader(r, &decoded_header));
    EXPECT_EQ(decoded_header.opcode, op);
    EXPECT_EQ(decoded_header.TotalBytes(), w.size());
    Req out;
    EXPECT_TRUE(Req::Decode(r, &out));
    return out;
  }
};

TEST_P(WireOrderTest, PrimitiveRoundTrips) {
  WireWriter w(order());
  w.U8(0xAB);
  w.U16(0x1234);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-42);
  w.PaddedString("hello");
  // 19 fixed bytes + "hello" = 24, already 4-aligned so no extra pad.
  EXPECT_EQ(w.size(), 24u);

  WireReader r(w.data(), order());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I32(), -42);
  EXPECT_EQ(r.PaddedString(5), "hello");
  EXPECT_TRUE(r.ok());
}

TEST_P(WireOrderTest, ReaderBoundsChecking) {
  WireWriter w(order());
  w.U16(7);
  WireReader r(w.data(), order());
  EXPECT_EQ(r.U16(), 7);
  r.U32();  // past the end
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // sticky failure returns zeroes
}

TEST_P(WireOrderTest, SelectEvents) {
  SelectEventsReq req;
  req.device = 3;
  req.mask = kPhoneRingMask | kPropertyChangeMask;
  const auto out = RoundTrip(Opcode::kSelectEvents, req);
  EXPECT_EQ(out.device, 3u);
  EXPECT_EQ(out.mask, req.mask);
}

TEST_P(WireOrderTest, CreateAC) {
  CreateACReq req;
  req.ac = 0x100007;
  req.device = 1;
  req.value_mask = kACPlayGain | kACEncodingType;
  req.attrs.play_gain_db = -12;
  req.attrs.encoding = AEncodeType::kLin16;
  req.attrs.channels = 2;
  const auto out = RoundTrip(Opcode::kCreateAC, req);
  EXPECT_EQ(out.ac, req.ac);
  EXPECT_EQ(out.attrs.play_gain_db, -12);
  EXPECT_EQ(out.attrs.encoding, AEncodeType::kLin16);
  EXPECT_EQ(out.attrs.channels, 2u);
}

TEST_P(WireOrderTest, PlaySamplesCarriesData) {
  std::vector<uint8_t> samples(1000);
  for (size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<uint8_t>(i * 7);
  }
  PlaySamplesReq req;
  req.ac = 0x100001;
  req.start_time = 0xFFFFFFF0u;  // near the wrap
  req.nbytes = static_cast<uint32_t>(samples.size());
  req.flags = kPlaySuppressReply;
  req.data = samples;

  // The decoded request's data is a view into the wire buffer, so (as in
  // the server's dispatcher) the buffer must outlive the decoded struct.
  WireWriter w(order());
  const size_t header = BeginRequest(w, Opcode::kPlaySamples);
  req.Encode(w);
  EndRequest(w, header);

  WireReader r(w.data(), order());
  RequestHeader decoded_header;
  ASSERT_TRUE(DecodeRequestHeader(r, &decoded_header));
  PlaySamplesReq out;
  ASSERT_TRUE(PlaySamplesReq::Decode(r, &out));
  EXPECT_EQ(out.start_time, req.start_time);
  EXPECT_EQ(out.nbytes, req.nbytes);
  EXPECT_EQ(out.flags, kPlaySuppressReply);
  ASSERT_EQ(out.data.size(), samples.size());
  EXPECT_TRUE(std::equal(samples.begin(), samples.end(), out.data.begin()));
}

TEST_P(WireOrderTest, RecordSamples) {
  RecordSamplesReq req;
  req.ac = 0x100002;
  req.start_time = 12345;
  req.nbytes = 8192;
  req.flags = kRecordNoBlock;
  const auto out = RoundTrip(Opcode::kRecordSamples, req);
  EXPECT_EQ(out.nbytes, 8192u);
  EXPECT_EQ(out.flags, kRecordNoBlock);
}

TEST_P(WireOrderTest, StringRequests) {
  InternAtomReq intern;
  intern.only_if_exists = 1;
  intern.name = "MY_PROPERTY";
  EXPECT_EQ(RoundTrip(Opcode::kInternAtom, intern).name, "MY_PROPERTY");

  DialPhoneReq dial;
  dial.device = 1;
  dial.number = "18005551212";
  EXPECT_EQ(RoundTrip(Opcode::kDialPhone, dial).number, "18005551212");

  QueryExtensionReq ext;
  ext.name = "NOT-YET";
  EXPECT_EQ(RoundTrip(Opcode::kQueryExtension, ext).name, "NOT-YET");
}

TEST_P(WireOrderTest, ChangeProperty) {
  ChangePropertyReq req;
  req.device = 0;
  req.property = kAtomLAST_NUMBER_DIALED;
  req.type = kAtomSTRING;
  req.format = 8;
  req.mode = PropertyMode::kAppend;
  req.data = {'5', '5', '5'};
  const auto out = RoundTrip(Opcode::kChangeProperty, req);
  EXPECT_EQ(out.mode, PropertyMode::kAppend);
  EXPECT_EQ(out.data, req.data);
}

TEST_P(WireOrderTest, HostRequests) {
  ChangeHostsReq req;
  req.mode = HostChangeMode::kDelete;
  req.family = 0;
  req.address = {192, 168, 1, 5};
  const auto out = RoundTrip(Opcode::kChangeHosts, req);
  EXPECT_EQ(out.mode, HostChangeMode::kDelete);
  EXPECT_EQ(out.address, req.address);
}

TEST_P(WireOrderTest, Replies) {
  WireWriter w(order());
  GetTimeReply time_reply;
  time_reply.time = 0xCAFEBABEu;
  time_reply.Encode(w, 77);
  ASSERT_EQ(w.size(), kReplyBaseBytes);
  ReplyHeader header;
  ASSERT_TRUE(PeekReplyHeader(w.data(), order(), &header));
  EXPECT_EQ(header.seq, 77);
  GetTimeReply decoded;
  ASSERT_TRUE(GetTimeReply::Decode(w.data(), order(), &decoded));
  EXPECT_EQ(decoded.time, 0xCAFEBABEu);
}

TEST_P(WireOrderTest, RecordReplyWithData) {
  WireWriter w(order());
  RecordSamplesReply reply;
  reply.time = 999;
  reply.data = {1, 2, 3, 4, 5, 6, 7};
  reply.actual_bytes = 7;
  reply.Encode(w, 5);
  EXPECT_EQ(w.size(), kReplyBaseBytes + 8);  // 7 bytes padded to 8

  RecordSamplesReply decoded;
  ASSERT_TRUE(RecordSamplesReply::Decode(w.data(), order(), &decoded));
  EXPECT_EQ(decoded.time, 999u);
  EXPECT_EQ(decoded.data, reply.data);
}

TEST_P(WireOrderTest, ListHostsReply) {
  WireWriter w(order());
  ListHostsReply reply;
  reply.enabled = 1;
  reply.hosts.push_back({0, {10, 0, 0, 1}});
  reply.hosts.push_back({1, std::vector<uint8_t>(16, 0xFE)});
  reply.Encode(w, 3);

  ListHostsReply decoded;
  ASSERT_TRUE(ListHostsReply::Decode(w.data(), order(), &decoded));
  EXPECT_EQ(decoded.enabled, 1u);
  ASSERT_EQ(decoded.hosts.size(), 2u);
  EXPECT_EQ(decoded.hosts[0].address, (std::vector<uint8_t>{10, 0, 0, 1}));
  EXPECT_EQ(decoded.hosts[1].address.size(), 16u);
}

TEST_P(WireOrderTest, ErrorPacket) {
  WireWriter w(order());
  ErrorPacket error;
  error.code = AfError::kBadDevice;
  error.seq = 42;
  error.opcode = Opcode::kGetTime;
  error.value = 9;
  error.Encode(w);
  ASSERT_EQ(w.size(), kReplyBaseBytes);

  ErrorPacket decoded;
  ASSERT_TRUE(ErrorPacket::Decode(w.data(), order(), &decoded));
  EXPECT_EQ(decoded.code, AfError::kBadDevice);
  EXPECT_EQ(decoded.seq, 42);
  EXPECT_EQ(decoded.opcode, Opcode::kGetTime);
  EXPECT_EQ(decoded.value, 9u);
}

TEST_P(WireOrderTest, EventRoundTrip) {
  WireWriter w(order());
  AEvent event;
  event.type = EventType::kPhoneDTMF;
  event.detail = '7';
  event.seq = 300;
  event.device = 2;
  event.dev_time = 0x80000001u;
  event.host_time_us = 1234567890123ull;
  event.w0 = '7';
  event.Encode(w);
  ASSERT_EQ(w.size(), kReplyBaseBytes);

  AEvent decoded;
  ASSERT_TRUE(AEvent::Decode(w.data(), order(), &decoded));
  EXPECT_EQ(decoded.type, EventType::kPhoneDTMF);
  EXPECT_EQ(decoded.detail, '7');
  EXPECT_EQ(decoded.dev_time, 0x80000001u);
  EXPECT_EQ(decoded.host_time_us, 1234567890123ull);
}

TEST_P(WireOrderTest, SetupHandshake) {
  SetupRequest request;
  request.order = order();
  request.auth_name = "MIT-MAGIC";
  request.auth_data = "xyzzy";
  const auto bytes = request.Encode();

  SetupRequest decoded;
  uint16_t name_len = 0;
  uint16_t data_len = 0;
  ASSERT_TRUE(SetupRequest::DecodeFixed(bytes, &decoded, &name_len, &data_len));
  EXPECT_EQ(decoded.order, order());
  EXPECT_EQ(name_len, 9);
  EXPECT_EQ(data_len, 5);
  EXPECT_EQ(bytes.size(), SetupRequest::kFixedBytes + Pad4(9) + Pad4(5));

  SetupReply reply;
  reply.success = true;
  reply.resource_id_base = 0x100000;
  reply.resource_id_mask = 0xFFFFF;
  reply.vendor = "AudioFile test";
  DeviceDesc dev;
  dev.index = 0;
  dev.type = DevType::kCodec;
  dev.play_buffer_samples = 32768;
  dev.inputs_from_phone = 1;
  reply.devices.push_back(dev);
  const auto reply_bytes = reply.Encode(order());

  bool success = false;
  uint32_t additional = 0;
  ASSERT_TRUE(SetupReply::DecodeFixed(
      std::span<const uint8_t>(reply_bytes).first(SetupReply::kFixedBytes), order(),
      &success, &additional));
  EXPECT_TRUE(success);
  EXPECT_EQ(reply_bytes.size(), SetupReply::kFixedBytes + additional * 4);

  SetupReply decoded_reply;
  ASSERT_TRUE(SetupReply::DecodeVariable(
      std::span<const uint8_t>(reply_bytes).subspan(SetupReply::kFixedBytes), order(),
      success, &decoded_reply));
  EXPECT_EQ(decoded_reply.vendor, "AudioFile test");
  ASSERT_EQ(decoded_reply.devices.size(), 1u);
  EXPECT_EQ(decoded_reply.devices[0].play_buffer_samples, 32768u);
  EXPECT_EQ(decoded_reply.devices[0].inputs_from_phone, 1u);
  EXPECT_NEAR(decoded_reply.devices[0].BufferSeconds(), 4.096, 0.001);
}

TEST_P(WireOrderTest, SetupFailureReply) {
  SetupReply reply;
  reply.success = false;
  reply.failure_reason = "host not authorized to connect";
  const auto bytes = reply.Encode(order());
  bool success = true;
  uint32_t additional = 0;
  ASSERT_TRUE(SetupReply::DecodeFixed(bytes, order(), &success, &additional));
  EXPECT_FALSE(success);
  SetupReply decoded;
  ASSERT_TRUE(SetupReply::DecodeVariable(
      std::span<const uint8_t>(bytes).subspan(SetupReply::kFixedBytes), order(), success,
      &decoded));
  EXPECT_EQ(decoded.failure_reason, "host not authorized to connect");
}

INSTANTIATE_TEST_SUITE_P(BothOrders, WireOrderTest,
                         ::testing::Values(WireOrder::kLittle, WireOrder::kBig));

TEST(WireTest, RequestTooLargeIsFatalCheckedByLimit) {
  // The 16-bit length field limits requests to 262144 bytes (Section 5.3).
  EXPECT_EQ(kMaxRequestBytes, 262144u);
}

TEST(AtomTest, BuiltinsArePreloaded) {
  AtomTable atoms;
  EXPECT_EQ(atoms.Intern("STRING", true), kAtomSTRING);
  EXPECT_EQ(atoms.Intern("LAST_NUMBER_DIALED", true), kAtomLAST_NUMBER_DIALED);
  EXPECT_EQ(atoms.NameOf(kAtomTIME).value(), "TIME");
  EXPECT_EQ(atoms.size(), static_cast<size_t>(kLastBuiltinAtom));
}

TEST(AtomTest, InternCreatesAndFinds) {
  AtomTable atoms;
  EXPECT_EQ(atoms.Intern("NEW_THING", true), kNoAtom);
  const Atom a = atoms.Intern("NEW_THING");
  EXPECT_GT(a, kLastBuiltinAtom);
  EXPECT_EQ(atoms.Intern("NEW_THING"), a);
  EXPECT_EQ(atoms.NameOf(a).value(), "NEW_THING");
  EXPECT_FALSE(atoms.NameOf(a + 100).has_value());
}

TEST(SampleTypeTest, Table) {
  EXPECT_EQ(SampleTypeOf(AEncodeType::kMu255).bytes_per_unit, 1u);
  EXPECT_EQ(SampleTypeOf(AEncodeType::kLin16).bytes_per_unit, 2u);
  EXPECT_STREQ(SampleTypeOf(AEncodeType::kLin32).name, "LIN32");
  // ADPCM32: 4 bits per sample, 2 samples per byte.
  EXPECT_EQ(SamplesToBytes(AEncodeType::kAdpcm32, 16, 1), 8u);
  EXPECT_EQ(BytesToSamples(AEncodeType::kLin16, 4000, 2), 1000u);
  EXPECT_EQ(SamplesToBytes(AEncodeType::kLin16, 1000, 2), 4000u);
}

}  // namespace
}  // namespace af
