// Heavier scenarios: the LineServer protocol over real UDP sockets with
// the firmware on its own thread (as a detached peripheral would be), and
// a many-client mixing stress run against one server.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/audio_context.h"
#include "clients/server_runner.h"
#include "devices/lineserver_device.h"
#include "dsp/g711.h"

namespace af {
namespace {

TEST(LineServerUdpTest, PlayRecordOverRealSockets) {
  auto channels = UdpChannel::CreatePair();
  ASSERT_TRUE(channels.ok());
  auto& [host_end, device_end] = channels.value();

  auto clock = std::make_shared<SystemSampleClock>(8000);
  LineServerFirmware firmware(std::move(device_end), clock);
  auto wire = std::make_shared<LoopbackWire>(1 << 15, 1, kMulawSilence, 0);
  firmware.SetSink(wire);
  firmware.SetSource(wire);

  // The peripheral's "network thread": poll the socket continuously.
  std::atomic<bool> stop{false};
  std::thread peripheral([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      firmware.ProcessPending();
      SleepMicros(500);
    }
  });

  LineServerHw::Config config;
  config.refresh_interval_us = 0;
  LineServerHw hw(std::move(host_end), config);
  // Real network: "pump" just gives the peripheral thread a moment.
  hw.SetPump([] { SleepMicros(2000); });

  // Register write survives the real socket round trip.
  hw.SetOutputGainDb(9);
  EXPECT_EQ(firmware.Register(LsCodecReg::kOutputGain), 9u);

  // Time estimates come from real reply packets.
  const uint32_t t0 = hw.ReadCounter();
  SleepMicros(100000);
  const uint32_t t1 = hw.ReadCounter();
  EXPECT_GT(t1, t0);
  EXPECT_NEAR(static_cast<int>(t1 - t0), 800, 300);  // ~100 ms at 8 kHz

  // Play, loop back through the wire, and record over UDP.
  const ATime when = t1 + 400;
  std::vector<uint8_t> pattern(600, 0x2C);
  hw.WritePlay(when, pattern);
  SleepMicros(200000);  // real time passes; the CODEC interrupt consumes

  std::vector<uint8_t> heard(600);
  hw.ReadRecord(when, heard);
  EXPECT_EQ(heard, pattern);

  stop.store(true);
  peripheral.join();
}

TEST(StressTest, EightClientsMixConcurrently) {
  ServerRunner::Config config;
  config.with_codec = true;
  auto runner = ServerRunner::Start(config);
  ASSERT_NE(runner, nullptr);
  auto sink = std::make_shared<CaptureSink>();
  runner->RunOnLoop([&] { runner->codec()->sim().SetSink(sink); });

  // One probe client establishes the shared schedule.
  auto probe = runner->ConnectInProcess().take();
  const ATime start = probe->GetTime(0).value() + 8000;  // one second out

  constexpr int kClients = 8;
  const uint8_t quiet = MulawFromLinear16(1500);  // 8 x 1500 = 12000, no clip
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto conn_result = runner->ConnectInProcess();
      if (!conn_result.ok()) {
        ++failures;
        return;
      }
      auto conn = conn_result.take();
      conn->SetErrorHandler([&](AFAudioConn&, const ErrorPacket&) { ++failures; });
      conn->SetIOErrorHandler([&](AFAudioConn&) { ++failures; });
      auto ac = conn->CreateAC(0, 0, ACAttributes{});
      if (!ac.ok()) {
        ++failures;
        return;
      }
      // Each client streams two seconds in 0.25 s blocks, plus sprinkles
      // of control traffic.
      std::vector<uint8_t> block(2000, quiet);
      ATime t = start;
      for (int b = 0; b < 8; ++b) {
        if (!ac.value()->PlaySamples(t, block).ok()) {
          ++failures;
          return;
        }
        t += 2000;
        if (b % 3 == c % 3) {
          conn->NoOp();
          if (!conn->GetTime(0).ok()) {
            ++failures;
          }
        }
      }
      conn->Sync();
    });
  }
  for (auto& thread : clients) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Wait for the mixed stream to play out, then verify the sum: eight
  // equal tones mix to eight times the amplitude.
  for (;;) {
    auto t = probe->GetTime(0);
    ASSERT_TRUE(t.ok());
    if (TimeAtOrAfter(t.value(), start + 16000 + 1600)) {
      break;
    }
    SleepMicros(50000);
  }
  std::vector<uint8_t> heard;
  runner->RunOnLoop([&] { heard = sink->Segment(start + 4000, 2000); });
  ASSERT_EQ(heard.size(), 2000u);
  EXPECT_NEAR(MulawToLinear16(heard[1000]), 8 * 1504, 600);
}

TEST(StressTest, ManyShortLivedConnections) {
  ServerRunner::Config config;
  config.with_codec = true;
  config.realtime = false;
  auto runner = ServerRunner::Start(config);
  ASSERT_NE(runner, nullptr);
  for (int i = 0; i < 100; ++i) {
    auto conn = runner->ConnectInProcess();
    ASSERT_TRUE(conn.ok()) << "connection " << i;
    auto t = conn.value()->GetTime(0);
    ASSERT_TRUE(t.ok());
    auto ac = conn.value()->CreateAC(0, 0, ACAttributes{});
    ASSERT_TRUE(ac.ok());
    // Half the connections leave without freeing their AC: the server
    // must clean up on disconnect.
    if (i % 2 == 0) {
      conn.value()->FreeAC(ac.value());
      conn.value()->Flush();
    }
  }
  // Disconnect cleanup is event-driven; give the loop a few turns.
  for (int i = 0; i < 100; ++i) {
    size_t count = 1;
    runner->RunOnLoop([&] { count = runner->server().client_count(); });
    if (count == 0) {
      break;
    }
    SleepMicros(10000);
  }
  runner->RunOnLoop([&] { EXPECT_EQ(runner->server().client_count(), 0u); });
}

}  // namespace
}  // namespace af
