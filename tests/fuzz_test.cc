// Robustness: garbage on the wire. A server shared by every desktop
// application must shrug off malformed clients - bad setup prefixes,
// random request streams, truncated requests - while other clients keep
// getting service. All teardown waits are deterministic (a server-drained
// barrier, never a sleep), and the random streams additionally run through
// a seeded FaultStream so the garbage arrives shortened and stalled too.
#include <gtest/gtest.h>

#include <random>

#include "client/audio_context.h"
#include "clients/server_runner.h"
#include "torture_util.h"
#include "transport/fault_stream.h"

namespace af {
namespace {

// Fixed seed corpus for the FaultStream walks each round of garbage rides
// through; failures print the seed so they replay exactly.
constexpr uint64_t kFuzzFaultSeedBase = 0xAF5EED;

class FuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerRunner::Config config;
    config.with_codec = true;
    config.realtime = false;
    runner_ = ServerRunner::Start(config);
    ASSERT_NE(runner_, nullptr);
    auto conn = runner_->ConnectInProcess();
    ASSERT_TRUE(conn.ok());
    conn_ = conn.take();
  }

  // A raw connection adopted by the server, bypassing the client library;
  // the server's side runs through `faults` (null = clean transport).
  FdStream RawConnection(std::shared_ptr<FaultSchedule> faults = nullptr) {
    auto pair = CreateStreamPair();
    EXPECT_TRUE(pair.ok());
    runner_->server().AdoptClient(std::move(pair.value().second), std::move(faults));
    return std::move(pair.value().first);
  }

  // Blocks (deterministically) until the hostile client is torn down and
  // only the bystander remains.
  void DrainToBystander(const std::string& context) {
    const size_t clients = torture::DrainToClientCount(*runner_, 1);
    EXPECT_EQ(clients, 1u) << context;
  }

  // The bystander client must still be served.
  void ExpectServerAlive() {
    auto t = conn_->GetTime(0);
    EXPECT_TRUE(t.ok());
  }

  std::unique_ptr<ServerRunner> runner_;
  std::unique_ptr<AFAudioConn> conn_;
};

TEST_F(FuzzTest, GarbageSetupPrefix) {
  for (const uint8_t first : {0x00, 0xFF, 0x41, 0x6D}) {
    FdStream raw = RawConnection();
    std::vector<uint8_t> garbage(64, first);
    raw.WriteAll(garbage.data(), garbage.size());
    raw.Close();
    DrainToBystander("garbage setup first byte " + std::to_string(first));
    ExpectServerAlive();
  }
}

TEST_F(FuzzTest, RandomRequestStreamsAfterValidSetup) {
  std::mt19937 rng(0xFEED);
  for (int round = 0; round < 16; ++round) {
    // The garbage rides through a seeded fault walk: shortened, stalled,
    // and reordered into every possible framing misalignment.
    const uint64_t fault_seed = kFuzzFaultSeedBase + static_cast<uint64_t>(round);
    FaultSchedule::RandomProfile profile;
    profile.p_short = 0.4;
    profile.p_would_block = 0.25;
    profile.p_delay = 0.0;  // nothing in this test should ever wait
    auto faults = FaultSchedule::Random(fault_seed, profile);
    FdStream raw = RawConnection(faults);
    // Valid setup first, so the fuzz hits the dispatcher, not the
    // handshake.
    ASSERT_TRUE(torture::RawSetup(raw));

    // Then a burst of random bytes shaped vaguely like requests: random
    // opcode, plausible length, random body.
    std::vector<uint8_t> burst;
    for (int i = 0; i < 40; ++i) {
      const uint8_t opcode = static_cast<uint8_t>(rng() % 48);  // some invalid
      const uint16_t words = static_cast<uint16_t>(rng() % 24 + 1);
      WireWriter w;
      w.U8(opcode);
      w.U8(static_cast<uint8_t>(rng()));
      w.U16(words);
      for (int j = 1; j < words; ++j) {
        w.U32(static_cast<uint32_t>(rng()));
      }
      burst.insert(burst.end(), w.data().begin(), w.data().end());
    }
    raw.WriteAll(burst.data(), burst.size());
    raw.Close();
    DrainToBystander("fuzz round " + std::to_string(round) + " fault seed " +
                     std::to_string(fault_seed) + "; trace: " + faults->TraceString());
    ExpectServerAlive();
  }
}

TEST_F(FuzzTest, TruncatedRequestThenDisconnect) {
  FdStream raw = RawConnection();
  SetupRequest setup;
  const auto setup_bytes = setup.Encode();
  ASSERT_TRUE(raw.WriteAll(setup_bytes.data(), setup_bytes.size()).ok());
  // Announce a 1000-word request but send only the header and a fragment.
  WireWriter w;
  w.U8(static_cast<uint8_t>(Opcode::kPlaySamples));
  w.U8(0);
  w.U16(1000);
  w.U32(0x12345678);
  raw.WriteAll(w.data().data(), w.size());
  raw.Close();  // mid-request disconnect
  DrainToBystander("truncated request then disconnect");
  ExpectServerAlive();
}

TEST_F(FuzzTest, OversizedNbytesFieldInPlay) {
  // nbytes claiming more data than the request carries must yield a
  // BadLength error, not a read past the request.
  FdStream raw = RawConnection();
  ASSERT_TRUE(torture::RawSetup(raw));

  WireWriter w;
  const size_t header = BeginRequest(w, Opcode::kPlaySamples);
  w.U32(0x100000);   // some AC id
  w.U32(0);          // start time
  w.U32(999999);     // nbytes far beyond the actual request size
  w.U32(0);          // flags
  w.U32(0xABCD);     // a token amount of "data"
  EndRequest(w, header);
  ASSERT_TRUE(raw.WriteAll(w.data().data(), w.size()).ok());

  uint8_t unit[kReplyBaseBytes];
  ASSERT_TRUE(raw.ReadAll(unit, sizeof(unit)).ok());
  ErrorPacket error;
  ASSERT_TRUE(ErrorPacket::Decode(unit, HostWireOrder(), &error));
  EXPECT_EQ(error.code, AfError::kBadLength);
  ExpectServerAlive();
}

}  // namespace
}  // namespace af
