// The client utility library surface (Tables 5/6) and the AF-compat C
// bindings used by code transcribed from the paper.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "afutil/afutil.h"
#include "client/af_compat.h"
#include "clients/server_runner.h"
#include "dsp/goertzel.h"

namespace af {
namespace {

TEST(AfUtilTablesTest, TablePointersMatchDspTables) {
  EXPECT_EQ(AF_exp_u()[0xFF], 0);  // mu-law silence decodes to zero
  EXPECT_EQ(AF_exp_u()[0x80], kG711Clip16);
  EXPECT_EQ(AF_comp_u()[8192], kMulawSilence);  // biased index of zero
  EXPECT_EQ(AF_cvt_a2u()[AF_cvt_u2a()[0x80]], 0x80);
  EXPECT_EQ(AF_mix_u()[(0xFFu << 8) | 0x80], 0x80);  // silence + full scale
  EXPECT_EQ(AF_gain_table_u(0)[0x93], 0x93);
  EXPECT_GT(AF_power_uf()[0x80], AF_power_uf()[0xC0]);
  EXPECT_EQ(AF_sine_int()[256], 32767);  // quarter period
  EXPECT_EQ(AF_sample_sizes(AEncodeType::kLin16).bytes_per_unit, 2u);
}

TEST(AfUtilProceduresTest, MakeGainTableArbitraryDb) {
  const GainTable t = AFMakeGainTableU(-40.0);  // outside the cached range
  const double in = MulawToLinear16(0x85);
  const double out = MulawToLinear16(t[0x85]);
  EXPECT_LT(std::abs(out), std::abs(in) / 50.0);
}

TEST(AfUtilProceduresTest, SilenceFillsPerEncoding) {
  std::vector<uint8_t> buf(16, 0);
  AFSilence(AEncodeType::kMu255, buf);
  EXPECT_EQ(buf[7], kMulawSilence);
  AFSilence(AEncodeType::kAlaw, buf);
  EXPECT_EQ(buf[7], kAlawSilence);
  AFSilence(AEncodeType::kLin16, buf);
  EXPECT_EQ(buf[7], 0);
}

TEST(AfUtilProceduresTest, TonePairAndPower) {
  std::vector<uint8_t> tone(8000);
  AFTonePair(440, -13, 620, -13, 8000, 32, tone);
  EXPECT_NEAR(AFPowerU(tone), -10.0, 0.7);
}

TEST(SoundFileTest, RawRoundTrip) {
  char path[] = "/tmp/af_soundfile_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  std::vector<uint8_t> data(3001);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(WriteRawSoundFile(path, data).ok());
  auto back = ReadRawSoundFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
  unlink(path);
  EXPECT_FALSE(ReadRawSoundFile("/nonexistent/file").ok());
}

class CompatApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerRunner::Config config;
    config.with_codec = true;
    config.with_phone = true;
    runner_ = ServerRunner::Start(config);
    ASSERT_NE(runner_, nullptr);
    auto pair = CreateStreamPair();
    ASSERT_TRUE(pair.ok());
    runner_->server().AdoptClient(std::move(pair.value().second));
    auto conn = AFAudioConn::FromStream(std::move(pair.value().first));
    ASSERT_TRUE(conn.ok());
    aud_ = conn.take().release();
  }
  void TearDown() override { AFCloseAudioConn(aud_); }

  std::unique_ptr<ServerRunner> runner_;
  AFAudioConn* aud_ = nullptr;
};

TEST_F(CompatApiTest, PaperStyleAplayFragment) {
  // This mirrors the aplay inner loop of Section 8.1.2 almost verbatim.
  AFSetACAttributes attributes;
  attributes.play_gain_db = 0;
  AC* ac = AFCreateAC(aud_, 0, ACPlayGain, &attributes);
  ASSERT_NE(ac, nullptr);

  const unsigned srate = ac->device().play_sample_rate;
  EXPECT_EQ(srate, 8000u);

  std::vector<unsigned char> buf(1000, 0x45);
  ATime t = AFGetTime(ac);
  t = t + srate / 10;
  for (int block = 0; block < 4; ++block) {
    const ATime nact = AFPlaySamples(ac, t, buf.size(), buf.data());
    EXPECT_TRUE(TimeAtOrBefore(nact, t));  // returned "now" is before start
    t += static_cast<ATime>(buf.size());
  }
  AFFlush(aud_);
  AFSync(aud_);
  AFFreeAC(ac);
}

TEST_F(CompatApiTest, PaperStyleRecordFragment) {
  AC* ac = AFCreateAC(aud_, 0, 0, nullptr);
  ASSERT_NE(ac, nullptr);
  std::vector<unsigned char> buf(800);
  const ATime t = AFGetTime(ac);
  const ATime after = AFRecordSamples(ac, t, buf.size(), buf.data(), ABlock);
  EXPECT_TRUE(TimeAtOrAfter(after, t + 800));
  AFFreeAC(ac);
}

TEST_F(CompatApiTest, TelephoneControls) {
  bool off_hook = false;
  bool loop = false;
  ASSERT_EQ(AFQueryPhone(aud_, 1, &off_hook, &loop), 0);
  EXPECT_FALSE(off_hook);
  AFHookSwitch(aud_, 1, true);
  AFSync(aud_);
  ASSERT_EQ(AFQueryPhone(aud_, 1, &off_hook, &loop), 0);
  EXPECT_TRUE(off_hook);
  AFHookSwitch(aud_, 1, false);
  AFSync(aud_);
}

TEST_F(CompatApiTest, DialPhonePlaysDecodableDigits) {
  AC* ac = AFCreateAC(aud_, 1, 0, nullptr);
  ASSERT_NE(ac, nullptr);
  AFHookSwitch(aud_, 1, true);
  auto end = AFDialPhone(ac, "180055512#");
  ASSERT_TRUE(end.ok());
  // Wait for the audio to cross the line, then ask the far end.
  for (;;) {
    const ATime now = AFGetTime(ac);
    if (TimeAtOrAfter(now, end.value() + 400)) {
      break;
    }
    SleepMicros(20000);
  }
  std::string digits;
  runner_->RunOnLoop([&] { digits = runner_->phone()->line().ReceivedDigits(); });
  EXPECT_EQ(digits, "180055512#");
  AFFreeAC(ac);
}

TEST(AoDTest, TrueDoesNothing) {
  AoD(true, "must not print or exit\n");
  SUCCEED();
}

}  // namespace
}  // namespace af
