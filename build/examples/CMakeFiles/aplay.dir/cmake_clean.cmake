file(REMOVE_RECURSE
  "CMakeFiles/aplay.dir/aplay.cpp.o"
  "CMakeFiles/aplay.dir/aplay.cpp.o.d"
  "aplay"
  "aplay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
