# Empty dependencies file for aplay.
# This may be replaced when dependencies are built.
