file(REMOVE_RECURSE
  "CMakeFiles/radio.dir/radio.cpp.o"
  "CMakeFiles/radio.dir/radio.cpp.o.d"
  "radio"
  "radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
