# Empty compiler generated dependencies file for radio.
# This may be replaced when dependencies are built.
