file(REMOVE_RECURSE
  "CMakeFiles/apass.dir/apass.cpp.o"
  "CMakeFiles/apass.dir/apass.cpp.o.d"
  "apass"
  "apass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
