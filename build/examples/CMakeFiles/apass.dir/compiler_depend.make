# Empty compiler generated dependencies file for apass.
# This may be replaced when dependencies are built.
