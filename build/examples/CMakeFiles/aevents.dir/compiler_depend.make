# Empty compiler generated dependencies file for aevents.
# This may be replaced when dependencies are built.
