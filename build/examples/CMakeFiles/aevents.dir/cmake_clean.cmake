file(REMOVE_RECURSE
  "CMakeFiles/aevents.dir/aevents.cpp.o"
  "CMakeFiles/aevents.dir/aevents.cpp.o.d"
  "aevents"
  "aevents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aevents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
