file(REMOVE_RECURSE
  "CMakeFiles/aset.dir/aset.cpp.o"
  "CMakeFiles/aset.dir/aset.cpp.o.d"
  "aset"
  "aset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
