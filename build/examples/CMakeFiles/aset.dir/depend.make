# Empty dependencies file for aset.
# This may be replaced when dependencies are built.
