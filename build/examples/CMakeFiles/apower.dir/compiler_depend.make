# Empty compiler generated dependencies file for apower.
# This may be replaced when dependencies are built.
