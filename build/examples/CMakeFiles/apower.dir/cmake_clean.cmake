file(REMOVE_RECURSE
  "CMakeFiles/apower.dir/apower.cpp.o"
  "CMakeFiles/apower.dir/apower.cpp.o.d"
  "apower"
  "apower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
