file(REMOVE_RECURSE
  "CMakeFiles/answering_machine.dir/answering_machine.cpp.o"
  "CMakeFiles/answering_machine.dir/answering_machine.cpp.o.d"
  "answering_machine"
  "answering_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answering_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
