# Empty compiler generated dependencies file for answering_machine.
# This may be replaced when dependencies are built.
