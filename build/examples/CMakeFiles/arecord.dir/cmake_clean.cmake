file(REMOVE_RECURSE
  "CMakeFiles/arecord.dir/arecord.cpp.o"
  "CMakeFiles/arecord.dir/arecord.cpp.o.d"
  "arecord"
  "arecord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arecord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
