# Empty dependencies file for arecord.
# This may be replaced when dependencies are built.
