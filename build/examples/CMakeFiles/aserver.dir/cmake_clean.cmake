file(REMOVE_RECURSE
  "CMakeFiles/aserver.dir/aserver.cpp.o"
  "CMakeFiles/aserver.dir/aserver.cpp.o.d"
  "aserver"
  "aserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
