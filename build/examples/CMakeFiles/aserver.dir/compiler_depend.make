# Empty compiler generated dependencies file for aserver.
# This may be replaced when dependencies are built.
