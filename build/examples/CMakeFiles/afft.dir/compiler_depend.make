# Empty compiler generated dependencies file for afft.
# This may be replaced when dependencies are built.
