file(REMOVE_RECURSE
  "CMakeFiles/afft.dir/afft.cpp.o"
  "CMakeFiles/afft.dir/afft.cpp.o.d"
  "afft"
  "afft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
