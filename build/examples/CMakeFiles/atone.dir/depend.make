# Empty dependencies file for atone.
# This may be replaced when dependencies are built.
