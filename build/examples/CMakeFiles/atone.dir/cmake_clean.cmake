file(REMOVE_RECURSE
  "CMakeFiles/atone.dir/atone.cpp.o"
  "CMakeFiles/atone.dir/atone.cpp.o.d"
  "atone"
  "atone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
