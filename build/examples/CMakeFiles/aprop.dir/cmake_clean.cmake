file(REMOVE_RECURSE
  "CMakeFiles/aprop.dir/aprop.cpp.o"
  "CMakeFiles/aprop.dir/aprop.cpp.o.d"
  "aprop"
  "aprop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aprop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
