# Empty dependencies file for aprop.
# This may be replaced when dependencies are built.
