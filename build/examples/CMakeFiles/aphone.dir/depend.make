# Empty dependencies file for aphone.
# This may be replaced when dependencies are built.
