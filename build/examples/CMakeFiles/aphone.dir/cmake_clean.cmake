file(REMOVE_RECURSE
  "CMakeFiles/aphone.dir/aphone.cpp.o"
  "CMakeFiles/aphone.dir/aphone.cpp.o.d"
  "aphone"
  "aphone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aphone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
