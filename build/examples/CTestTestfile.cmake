# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aplay "/root/repo/build/examples/aplay" "-demo")
set_tests_properties(example_aplay PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_afft "/root/repo/build/examples/afft" "-length" "128" "-stride" "128")
set_tests_properties(example_afft PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aset "/root/repo/build/examples/aset")
set_tests_properties(example_aset PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aprop "/root/repo/build/examples/aprop")
set_tests_properties(example_aprop PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aphone "/root/repo/build/examples/aphone" "555")
set_tests_properties(example_aphone PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_radio "/root/repo/build/examples/radio")
set_tests_properties(example_radio PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
