# Empty dependencies file for af_afutil.
# This may be replaced when dependencies are built.
