
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/afutil/aod.cc" "src/CMakeFiles/af_afutil.dir/afutil/aod.cc.o" "gcc" "src/CMakeFiles/af_afutil.dir/afutil/aod.cc.o.d"
  "/root/repo/src/afutil/dial.cc" "src/CMakeFiles/af_afutil.dir/afutil/dial.cc.o" "gcc" "src/CMakeFiles/af_afutil.dir/afutil/dial.cc.o.d"
  "/root/repo/src/afutil/soundfile.cc" "src/CMakeFiles/af_afutil.dir/afutil/soundfile.cc.o" "gcc" "src/CMakeFiles/af_afutil.dir/afutil/soundfile.cc.o.d"
  "/root/repo/src/afutil/tables.cc" "src/CMakeFiles/af_afutil.dir/afutil/tables.cc.o" "gcc" "src/CMakeFiles/af_afutil.dir/afutil/tables.cc.o.d"
  "/root/repo/src/afutil/tones.cc" "src/CMakeFiles/af_afutil.dir/afutil/tones.cc.o" "gcc" "src/CMakeFiles/af_afutil.dir/afutil/tones.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/af_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
