file(REMOVE_RECURSE
  "libaf_afutil.a"
)
