file(REMOVE_RECURSE
  "CMakeFiles/af_afutil.dir/afutil/aod.cc.o"
  "CMakeFiles/af_afutil.dir/afutil/aod.cc.o.d"
  "CMakeFiles/af_afutil.dir/afutil/dial.cc.o"
  "CMakeFiles/af_afutil.dir/afutil/dial.cc.o.d"
  "CMakeFiles/af_afutil.dir/afutil/soundfile.cc.o"
  "CMakeFiles/af_afutil.dir/afutil/soundfile.cc.o.d"
  "CMakeFiles/af_afutil.dir/afutil/tables.cc.o"
  "CMakeFiles/af_afutil.dir/afutil/tables.cc.o.d"
  "CMakeFiles/af_afutil.dir/afutil/tones.cc.o"
  "CMakeFiles/af_afutil.dir/afutil/tones.cc.o.d"
  "libaf_afutil.a"
  "libaf_afutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_afutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
