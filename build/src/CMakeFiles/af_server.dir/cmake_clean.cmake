file(REMOVE_RECURSE
  "CMakeFiles/af_server.dir/server/access_control.cc.o"
  "CMakeFiles/af_server.dir/server/access_control.cc.o.d"
  "CMakeFiles/af_server.dir/server/audio_device.cc.o"
  "CMakeFiles/af_server.dir/server/audio_device.cc.o.d"
  "CMakeFiles/af_server.dir/server/client_conn.cc.o"
  "CMakeFiles/af_server.dir/server/client_conn.cc.o.d"
  "CMakeFiles/af_server.dir/server/device_buffer.cc.o"
  "CMakeFiles/af_server.dir/server/device_buffer.cc.o.d"
  "CMakeFiles/af_server.dir/server/dispatch.cc.o"
  "CMakeFiles/af_server.dir/server/dispatch.cc.o.d"
  "CMakeFiles/af_server.dir/server/properties.cc.o"
  "CMakeFiles/af_server.dir/server/properties.cc.o.d"
  "CMakeFiles/af_server.dir/server/server.cc.o"
  "CMakeFiles/af_server.dir/server/server.cc.o.d"
  "CMakeFiles/af_server.dir/server/task.cc.o"
  "CMakeFiles/af_server.dir/server/task.cc.o.d"
  "libaf_server.a"
  "libaf_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
