
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/access_control.cc" "src/CMakeFiles/af_server.dir/server/access_control.cc.o" "gcc" "src/CMakeFiles/af_server.dir/server/access_control.cc.o.d"
  "/root/repo/src/server/audio_device.cc" "src/CMakeFiles/af_server.dir/server/audio_device.cc.o" "gcc" "src/CMakeFiles/af_server.dir/server/audio_device.cc.o.d"
  "/root/repo/src/server/client_conn.cc" "src/CMakeFiles/af_server.dir/server/client_conn.cc.o" "gcc" "src/CMakeFiles/af_server.dir/server/client_conn.cc.o.d"
  "/root/repo/src/server/device_buffer.cc" "src/CMakeFiles/af_server.dir/server/device_buffer.cc.o" "gcc" "src/CMakeFiles/af_server.dir/server/device_buffer.cc.o.d"
  "/root/repo/src/server/dispatch.cc" "src/CMakeFiles/af_server.dir/server/dispatch.cc.o" "gcc" "src/CMakeFiles/af_server.dir/server/dispatch.cc.o.d"
  "/root/repo/src/server/properties.cc" "src/CMakeFiles/af_server.dir/server/properties.cc.o" "gcc" "src/CMakeFiles/af_server.dir/server/properties.cc.o.d"
  "/root/repo/src/server/server.cc" "src/CMakeFiles/af_server.dir/server/server.cc.o" "gcc" "src/CMakeFiles/af_server.dir/server/server.cc.o.d"
  "/root/repo/src/server/task.cc" "src/CMakeFiles/af_server.dir/server/task.cc.o" "gcc" "src/CMakeFiles/af_server.dir/server/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/af_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
