file(REMOVE_RECURSE
  "libaf_server.a"
)
