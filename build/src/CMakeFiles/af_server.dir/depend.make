# Empty dependencies file for af_server.
# This may be replaced when dependencies are built.
