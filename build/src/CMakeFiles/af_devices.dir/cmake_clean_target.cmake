file(REMOVE_RECURSE
  "libaf_devices.a"
)
