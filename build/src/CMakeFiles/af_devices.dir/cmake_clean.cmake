file(REMOVE_RECURSE
  "CMakeFiles/af_devices.dir/devices/codec_device.cc.o"
  "CMakeFiles/af_devices.dir/devices/codec_device.cc.o.d"
  "CMakeFiles/af_devices.dir/devices/hifi_device.cc.o"
  "CMakeFiles/af_devices.dir/devices/hifi_device.cc.o.d"
  "CMakeFiles/af_devices.dir/devices/lineserver_device.cc.o"
  "CMakeFiles/af_devices.dir/devices/lineserver_device.cc.o.d"
  "CMakeFiles/af_devices.dir/devices/lineserver_firmware.cc.o"
  "CMakeFiles/af_devices.dir/devices/lineserver_firmware.cc.o.d"
  "CMakeFiles/af_devices.dir/devices/phone_device.cc.o"
  "CMakeFiles/af_devices.dir/devices/phone_device.cc.o.d"
  "CMakeFiles/af_devices.dir/devices/phone_line.cc.o"
  "CMakeFiles/af_devices.dir/devices/phone_line.cc.o.d"
  "CMakeFiles/af_devices.dir/devices/sim_hw.cc.o"
  "CMakeFiles/af_devices.dir/devices/sim_hw.cc.o.d"
  "libaf_devices.a"
  "libaf_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
