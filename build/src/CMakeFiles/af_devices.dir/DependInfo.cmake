
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/codec_device.cc" "src/CMakeFiles/af_devices.dir/devices/codec_device.cc.o" "gcc" "src/CMakeFiles/af_devices.dir/devices/codec_device.cc.o.d"
  "/root/repo/src/devices/hifi_device.cc" "src/CMakeFiles/af_devices.dir/devices/hifi_device.cc.o" "gcc" "src/CMakeFiles/af_devices.dir/devices/hifi_device.cc.o.d"
  "/root/repo/src/devices/lineserver_device.cc" "src/CMakeFiles/af_devices.dir/devices/lineserver_device.cc.o" "gcc" "src/CMakeFiles/af_devices.dir/devices/lineserver_device.cc.o.d"
  "/root/repo/src/devices/lineserver_firmware.cc" "src/CMakeFiles/af_devices.dir/devices/lineserver_firmware.cc.o" "gcc" "src/CMakeFiles/af_devices.dir/devices/lineserver_firmware.cc.o.d"
  "/root/repo/src/devices/phone_device.cc" "src/CMakeFiles/af_devices.dir/devices/phone_device.cc.o" "gcc" "src/CMakeFiles/af_devices.dir/devices/phone_device.cc.o.d"
  "/root/repo/src/devices/phone_line.cc" "src/CMakeFiles/af_devices.dir/devices/phone_line.cc.o" "gcc" "src/CMakeFiles/af_devices.dir/devices/phone_line.cc.o.d"
  "/root/repo/src/devices/sim_hw.cc" "src/CMakeFiles/af_devices.dir/devices/sim_hw.cc.o" "gcc" "src/CMakeFiles/af_devices.dir/devices/sim_hw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/af_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
