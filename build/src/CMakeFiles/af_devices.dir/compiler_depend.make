# Empty compiler generated dependencies file for af_devices.
# This may be replaced when dependencies are built.
