file(REMOVE_RECURSE
  "CMakeFiles/af_common.dir/common/atime.cc.o"
  "CMakeFiles/af_common.dir/common/atime.cc.o.d"
  "CMakeFiles/af_common.dir/common/clock.cc.o"
  "CMakeFiles/af_common.dir/common/clock.cc.o.d"
  "CMakeFiles/af_common.dir/common/error.cc.o"
  "CMakeFiles/af_common.dir/common/error.cc.o.d"
  "CMakeFiles/af_common.dir/common/log.cc.o"
  "CMakeFiles/af_common.dir/common/log.cc.o.d"
  "libaf_common.a"
  "libaf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
