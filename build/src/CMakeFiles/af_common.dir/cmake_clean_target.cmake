file(REMOVE_RECURSE
  "libaf_common.a"
)
