
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/atime.cc" "src/CMakeFiles/af_common.dir/common/atime.cc.o" "gcc" "src/CMakeFiles/af_common.dir/common/atime.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/af_common.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/af_common.dir/common/clock.cc.o.d"
  "/root/repo/src/common/error.cc" "src/CMakeFiles/af_common.dir/common/error.cc.o" "gcc" "src/CMakeFiles/af_common.dir/common/error.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/af_common.dir/common/log.cc.o" "gcc" "src/CMakeFiles/af_common.dir/common/log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
