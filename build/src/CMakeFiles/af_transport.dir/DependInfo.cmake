
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/datagram.cc" "src/CMakeFiles/af_transport.dir/transport/datagram.cc.o" "gcc" "src/CMakeFiles/af_transport.dir/transport/datagram.cc.o.d"
  "/root/repo/src/transport/listener.cc" "src/CMakeFiles/af_transport.dir/transport/listener.cc.o" "gcc" "src/CMakeFiles/af_transport.dir/transport/listener.cc.o.d"
  "/root/repo/src/transport/poller.cc" "src/CMakeFiles/af_transport.dir/transport/poller.cc.o" "gcc" "src/CMakeFiles/af_transport.dir/transport/poller.cc.o.d"
  "/root/repo/src/transport/stream.cc" "src/CMakeFiles/af_transport.dir/transport/stream.cc.o" "gcc" "src/CMakeFiles/af_transport.dir/transport/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
