# Empty dependencies file for af_transport.
# This may be replaced when dependencies are built.
