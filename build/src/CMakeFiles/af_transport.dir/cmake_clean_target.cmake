file(REMOVE_RECURSE
  "libaf_transport.a"
)
