file(REMOVE_RECURSE
  "CMakeFiles/af_transport.dir/transport/datagram.cc.o"
  "CMakeFiles/af_transport.dir/transport/datagram.cc.o.d"
  "CMakeFiles/af_transport.dir/transport/listener.cc.o"
  "CMakeFiles/af_transport.dir/transport/listener.cc.o.d"
  "CMakeFiles/af_transport.dir/transport/poller.cc.o"
  "CMakeFiles/af_transport.dir/transport/poller.cc.o.d"
  "CMakeFiles/af_transport.dir/transport/stream.cc.o"
  "CMakeFiles/af_transport.dir/transport/stream.cc.o.d"
  "libaf_transport.a"
  "libaf_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
