# Empty dependencies file for af_client.
# This may be replaced when dependencies are built.
