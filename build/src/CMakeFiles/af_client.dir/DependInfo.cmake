
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/af_compat.cc" "src/CMakeFiles/af_client.dir/client/af_compat.cc.o" "gcc" "src/CMakeFiles/af_client.dir/client/af_compat.cc.o.d"
  "/root/repo/src/client/audio_io.cc" "src/CMakeFiles/af_client.dir/client/audio_io.cc.o" "gcc" "src/CMakeFiles/af_client.dir/client/audio_io.cc.o.d"
  "/root/repo/src/client/connection.cc" "src/CMakeFiles/af_client.dir/client/connection.cc.o" "gcc" "src/CMakeFiles/af_client.dir/client/connection.cc.o.d"
  "/root/repo/src/client/device_control.cc" "src/CMakeFiles/af_client.dir/client/device_control.cc.o" "gcc" "src/CMakeFiles/af_client.dir/client/device_control.cc.o.d"
  "/root/repo/src/client/events.cc" "src/CMakeFiles/af_client.dir/client/events.cc.o" "gcc" "src/CMakeFiles/af_client.dir/client/events.cc.o.d"
  "/root/repo/src/client/properties.cc" "src/CMakeFiles/af_client.dir/client/properties.cc.o" "gcc" "src/CMakeFiles/af_client.dir/client/properties.cc.o.d"
  "/root/repo/src/client/telephone.cc" "src/CMakeFiles/af_client.dir/client/telephone.cc.o" "gcc" "src/CMakeFiles/af_client.dir/client/telephone.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/af_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
