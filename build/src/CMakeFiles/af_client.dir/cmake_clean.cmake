file(REMOVE_RECURSE
  "CMakeFiles/af_client.dir/client/af_compat.cc.o"
  "CMakeFiles/af_client.dir/client/af_compat.cc.o.d"
  "CMakeFiles/af_client.dir/client/audio_io.cc.o"
  "CMakeFiles/af_client.dir/client/audio_io.cc.o.d"
  "CMakeFiles/af_client.dir/client/connection.cc.o"
  "CMakeFiles/af_client.dir/client/connection.cc.o.d"
  "CMakeFiles/af_client.dir/client/device_control.cc.o"
  "CMakeFiles/af_client.dir/client/device_control.cc.o.d"
  "CMakeFiles/af_client.dir/client/events.cc.o"
  "CMakeFiles/af_client.dir/client/events.cc.o.d"
  "CMakeFiles/af_client.dir/client/properties.cc.o"
  "CMakeFiles/af_client.dir/client/properties.cc.o.d"
  "CMakeFiles/af_client.dir/client/telephone.cc.o"
  "CMakeFiles/af_client.dir/client/telephone.cc.o.d"
  "libaf_client.a"
  "libaf_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
