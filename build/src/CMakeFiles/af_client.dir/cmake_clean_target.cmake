file(REMOVE_RECURSE
  "libaf_client.a"
)
