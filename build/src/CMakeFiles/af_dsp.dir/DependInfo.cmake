
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/adpcm.cc" "src/CMakeFiles/af_dsp.dir/dsp/adpcm.cc.o" "gcc" "src/CMakeFiles/af_dsp.dir/dsp/adpcm.cc.o.d"
  "/root/repo/src/dsp/dtmf.cc" "src/CMakeFiles/af_dsp.dir/dsp/dtmf.cc.o" "gcc" "src/CMakeFiles/af_dsp.dir/dsp/dtmf.cc.o.d"
  "/root/repo/src/dsp/fft.cc" "src/CMakeFiles/af_dsp.dir/dsp/fft.cc.o" "gcc" "src/CMakeFiles/af_dsp.dir/dsp/fft.cc.o.d"
  "/root/repo/src/dsp/g711.cc" "src/CMakeFiles/af_dsp.dir/dsp/g711.cc.o" "gcc" "src/CMakeFiles/af_dsp.dir/dsp/g711.cc.o.d"
  "/root/repo/src/dsp/gain.cc" "src/CMakeFiles/af_dsp.dir/dsp/gain.cc.o" "gcc" "src/CMakeFiles/af_dsp.dir/dsp/gain.cc.o.d"
  "/root/repo/src/dsp/goertzel.cc" "src/CMakeFiles/af_dsp.dir/dsp/goertzel.cc.o" "gcc" "src/CMakeFiles/af_dsp.dir/dsp/goertzel.cc.o.d"
  "/root/repo/src/dsp/mix.cc" "src/CMakeFiles/af_dsp.dir/dsp/mix.cc.o" "gcc" "src/CMakeFiles/af_dsp.dir/dsp/mix.cc.o.d"
  "/root/repo/src/dsp/power.cc" "src/CMakeFiles/af_dsp.dir/dsp/power.cc.o" "gcc" "src/CMakeFiles/af_dsp.dir/dsp/power.cc.o.d"
  "/root/repo/src/dsp/resample.cc" "src/CMakeFiles/af_dsp.dir/dsp/resample.cc.o" "gcc" "src/CMakeFiles/af_dsp.dir/dsp/resample.cc.o.d"
  "/root/repo/src/dsp/tones.cc" "src/CMakeFiles/af_dsp.dir/dsp/tones.cc.o" "gcc" "src/CMakeFiles/af_dsp.dir/dsp/tones.cc.o.d"
  "/root/repo/src/dsp/window.cc" "src/CMakeFiles/af_dsp.dir/dsp/window.cc.o" "gcc" "src/CMakeFiles/af_dsp.dir/dsp/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
