file(REMOVE_RECURSE
  "CMakeFiles/af_dsp.dir/dsp/adpcm.cc.o"
  "CMakeFiles/af_dsp.dir/dsp/adpcm.cc.o.d"
  "CMakeFiles/af_dsp.dir/dsp/dtmf.cc.o"
  "CMakeFiles/af_dsp.dir/dsp/dtmf.cc.o.d"
  "CMakeFiles/af_dsp.dir/dsp/fft.cc.o"
  "CMakeFiles/af_dsp.dir/dsp/fft.cc.o.d"
  "CMakeFiles/af_dsp.dir/dsp/g711.cc.o"
  "CMakeFiles/af_dsp.dir/dsp/g711.cc.o.d"
  "CMakeFiles/af_dsp.dir/dsp/gain.cc.o"
  "CMakeFiles/af_dsp.dir/dsp/gain.cc.o.d"
  "CMakeFiles/af_dsp.dir/dsp/goertzel.cc.o"
  "CMakeFiles/af_dsp.dir/dsp/goertzel.cc.o.d"
  "CMakeFiles/af_dsp.dir/dsp/mix.cc.o"
  "CMakeFiles/af_dsp.dir/dsp/mix.cc.o.d"
  "CMakeFiles/af_dsp.dir/dsp/power.cc.o"
  "CMakeFiles/af_dsp.dir/dsp/power.cc.o.d"
  "CMakeFiles/af_dsp.dir/dsp/resample.cc.o"
  "CMakeFiles/af_dsp.dir/dsp/resample.cc.o.d"
  "CMakeFiles/af_dsp.dir/dsp/tones.cc.o"
  "CMakeFiles/af_dsp.dir/dsp/tones.cc.o.d"
  "CMakeFiles/af_dsp.dir/dsp/window.cc.o"
  "CMakeFiles/af_dsp.dir/dsp/window.cc.o.d"
  "libaf_dsp.a"
  "libaf_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
