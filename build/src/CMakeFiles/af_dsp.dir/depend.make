# Empty dependencies file for af_dsp.
# This may be replaced when dependencies are built.
