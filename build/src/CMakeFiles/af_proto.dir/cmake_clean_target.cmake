file(REMOVE_RECURSE
  "libaf_proto.a"
)
