# Empty compiler generated dependencies file for af_proto.
# This may be replaced when dependencies are built.
