
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/atoms.cc" "src/CMakeFiles/af_proto.dir/proto/atoms.cc.o" "gcc" "src/CMakeFiles/af_proto.dir/proto/atoms.cc.o.d"
  "/root/repo/src/proto/events.cc" "src/CMakeFiles/af_proto.dir/proto/events.cc.o" "gcc" "src/CMakeFiles/af_proto.dir/proto/events.cc.o.d"
  "/root/repo/src/proto/requests.cc" "src/CMakeFiles/af_proto.dir/proto/requests.cc.o" "gcc" "src/CMakeFiles/af_proto.dir/proto/requests.cc.o.d"
  "/root/repo/src/proto/setup.cc" "src/CMakeFiles/af_proto.dir/proto/setup.cc.o" "gcc" "src/CMakeFiles/af_proto.dir/proto/setup.cc.o.d"
  "/root/repo/src/proto/wire.cc" "src/CMakeFiles/af_proto.dir/proto/wire.cc.o" "gcc" "src/CMakeFiles/af_proto.dir/proto/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
