file(REMOVE_RECURSE
  "CMakeFiles/af_proto.dir/proto/atoms.cc.o"
  "CMakeFiles/af_proto.dir/proto/atoms.cc.o.d"
  "CMakeFiles/af_proto.dir/proto/events.cc.o"
  "CMakeFiles/af_proto.dir/proto/events.cc.o.d"
  "CMakeFiles/af_proto.dir/proto/requests.cc.o"
  "CMakeFiles/af_proto.dir/proto/requests.cc.o.d"
  "CMakeFiles/af_proto.dir/proto/setup.cc.o"
  "CMakeFiles/af_proto.dir/proto/setup.cc.o.d"
  "CMakeFiles/af_proto.dir/proto/wire.cc.o"
  "CMakeFiles/af_proto.dir/proto/wire.cc.o.d"
  "libaf_proto.a"
  "libaf_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
