file(REMOVE_RECURSE
  "libaf_clients.a"
)
