file(REMOVE_RECURSE
  "CMakeFiles/af_clients.dir/clients/aevents_core.cc.o"
  "CMakeFiles/af_clients.dir/clients/aevents_core.cc.o.d"
  "CMakeFiles/af_clients.dir/clients/afft_core.cc.o"
  "CMakeFiles/af_clients.dir/clients/afft_core.cc.o.d"
  "CMakeFiles/af_clients.dir/clients/answering_machine.cc.o"
  "CMakeFiles/af_clients.dir/clients/answering_machine.cc.o.d"
  "CMakeFiles/af_clients.dir/clients/apass_core.cc.o"
  "CMakeFiles/af_clients.dir/clients/apass_core.cc.o.d"
  "CMakeFiles/af_clients.dir/clients/aplay_core.cc.o"
  "CMakeFiles/af_clients.dir/clients/aplay_core.cc.o.d"
  "CMakeFiles/af_clients.dir/clients/arecord_core.cc.o"
  "CMakeFiles/af_clients.dir/clients/arecord_core.cc.o.d"
  "CMakeFiles/af_clients.dir/clients/server_runner.cc.o"
  "CMakeFiles/af_clients.dir/clients/server_runner.cc.o.d"
  "libaf_clients.a"
  "libaf_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
