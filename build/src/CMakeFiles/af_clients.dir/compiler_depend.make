# Empty compiler generated dependencies file for af_clients.
# This may be replaced when dependencies are built.
