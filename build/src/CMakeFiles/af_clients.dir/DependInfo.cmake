
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clients/aevents_core.cc" "src/CMakeFiles/af_clients.dir/clients/aevents_core.cc.o" "gcc" "src/CMakeFiles/af_clients.dir/clients/aevents_core.cc.o.d"
  "/root/repo/src/clients/afft_core.cc" "src/CMakeFiles/af_clients.dir/clients/afft_core.cc.o" "gcc" "src/CMakeFiles/af_clients.dir/clients/afft_core.cc.o.d"
  "/root/repo/src/clients/answering_machine.cc" "src/CMakeFiles/af_clients.dir/clients/answering_machine.cc.o" "gcc" "src/CMakeFiles/af_clients.dir/clients/answering_machine.cc.o.d"
  "/root/repo/src/clients/apass_core.cc" "src/CMakeFiles/af_clients.dir/clients/apass_core.cc.o" "gcc" "src/CMakeFiles/af_clients.dir/clients/apass_core.cc.o.d"
  "/root/repo/src/clients/aplay_core.cc" "src/CMakeFiles/af_clients.dir/clients/aplay_core.cc.o" "gcc" "src/CMakeFiles/af_clients.dir/clients/aplay_core.cc.o.d"
  "/root/repo/src/clients/arecord_core.cc" "src/CMakeFiles/af_clients.dir/clients/arecord_core.cc.o" "gcc" "src/CMakeFiles/af_clients.dir/clients/arecord_core.cc.o.d"
  "/root/repo/src/clients/server_runner.cc" "src/CMakeFiles/af_clients.dir/clients/server_runner.cc.o" "gcc" "src/CMakeFiles/af_clients.dir/clients/server_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/af_afutil.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
