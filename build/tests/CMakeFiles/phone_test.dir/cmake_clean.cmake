file(REMOVE_RECURSE
  "CMakeFiles/phone_test.dir/phone_test.cc.o"
  "CMakeFiles/phone_test.dir/phone_test.cc.o.d"
  "phone_test"
  "phone_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
