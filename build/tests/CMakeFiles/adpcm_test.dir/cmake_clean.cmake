file(REMOVE_RECURSE
  "CMakeFiles/adpcm_test.dir/adpcm_test.cc.o"
  "CMakeFiles/adpcm_test.dir/adpcm_test.cc.o.d"
  "adpcm_test"
  "adpcm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adpcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
