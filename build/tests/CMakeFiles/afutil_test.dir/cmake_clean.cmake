file(REMOVE_RECURSE
  "CMakeFiles/afutil_test.dir/afutil_test.cc.o"
  "CMakeFiles/afutil_test.dir/afutil_test.cc.o.d"
  "afutil_test"
  "afutil_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afutil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
