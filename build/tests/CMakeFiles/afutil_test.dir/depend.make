# Empty dependencies file for afutil_test.
# This may be replaced when dependencies are built.
