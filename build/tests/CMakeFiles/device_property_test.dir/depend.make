# Empty dependencies file for device_property_test.
# This may be replaced when dependencies are built.
