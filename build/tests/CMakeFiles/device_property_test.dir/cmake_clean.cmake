file(REMOVE_RECURSE
  "CMakeFiles/device_property_test.dir/device_property_test.cc.o"
  "CMakeFiles/device_property_test.dir/device_property_test.cc.o.d"
  "device_property_test"
  "device_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
