file(REMOVE_RECURSE
  "CMakeFiles/lineserver_test.dir/lineserver_test.cc.o"
  "CMakeFiles/lineserver_test.dir/lineserver_test.cc.o.d"
  "lineserver_test"
  "lineserver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
