# Empty compiler generated dependencies file for lineserver_test.
# This may be replaced when dependencies are built.
