file(REMOVE_RECURSE
  "CMakeFiles/clients_test.dir/clients_test.cc.o"
  "CMakeFiles/clients_test.dir/clients_test.cc.o.d"
  "clients_test"
  "clients_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clients_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
