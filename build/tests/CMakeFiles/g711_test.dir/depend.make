# Empty dependencies file for g711_test.
# This may be replaced when dependencies are built.
