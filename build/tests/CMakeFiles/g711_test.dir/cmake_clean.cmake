file(REMOVE_RECURSE
  "CMakeFiles/g711_test.dir/g711_test.cc.o"
  "CMakeFiles/g711_test.dir/g711_test.cc.o.d"
  "g711_test"
  "g711_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g711_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
