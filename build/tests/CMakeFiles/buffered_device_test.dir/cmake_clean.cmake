file(REMOVE_RECURSE
  "CMakeFiles/buffered_device_test.dir/buffered_device_test.cc.o"
  "CMakeFiles/buffered_device_test.dir/buffered_device_test.cc.o.d"
  "buffered_device_test"
  "buffered_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffered_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
