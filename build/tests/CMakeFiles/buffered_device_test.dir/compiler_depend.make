# Empty compiler generated dependencies file for buffered_device_test.
# This may be replaced when dependencies are built.
