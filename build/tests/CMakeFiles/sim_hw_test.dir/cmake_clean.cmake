file(REMOVE_RECURSE
  "CMakeFiles/sim_hw_test.dir/sim_hw_test.cc.o"
  "CMakeFiles/sim_hw_test.dir/sim_hw_test.cc.o.d"
  "sim_hw_test"
  "sim_hw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_hw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
