file(REMOVE_RECURSE
  "CMakeFiles/device_buffer_test.dir/device_buffer_test.cc.o"
  "CMakeFiles/device_buffer_test.dir/device_buffer_test.cc.o.d"
  "device_buffer_test"
  "device_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
