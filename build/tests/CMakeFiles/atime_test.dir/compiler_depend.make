# Empty compiler generated dependencies file for atime_test.
# This may be replaced when dependencies are built.
