file(REMOVE_RECURSE
  "CMakeFiles/atime_test.dir/atime_test.cc.o"
  "CMakeFiles/atime_test.dir/atime_test.cc.o.d"
  "atime_test"
  "atime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
