file(REMOVE_RECURSE
  "CMakeFiles/bench_dsp.dir/bench_dsp.cc.o"
  "CMakeFiles/bench_dsp.dir/bench_dsp.cc.o.d"
  "bench_dsp"
  "bench_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
