# Empty dependencies file for bench_cpu.
# This may be replaced when dependencies are built.
