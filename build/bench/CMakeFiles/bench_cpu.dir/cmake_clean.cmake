file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu.dir/bench_cpu.cc.o"
  "CMakeFiles/bench_cpu.dir/bench_cpu.cc.o.d"
  "bench_cpu"
  "bench_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
