# Empty compiler generated dependencies file for bench_loopback.
# This may be replaced when dependencies are built.
