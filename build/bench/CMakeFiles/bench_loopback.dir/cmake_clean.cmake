file(REMOVE_RECURSE
  "CMakeFiles/bench_loopback.dir/bench_loopback.cc.o"
  "CMakeFiles/bench_loopback.dir/bench_loopback.cc.o.d"
  "bench_loopback"
  "bench_loopback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loopback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
