file(REMOVE_RECURSE
  "CMakeFiles/bench_gettime.dir/bench_gettime.cc.o"
  "CMakeFiles/bench_gettime.dir/bench_gettime.cc.o.d"
  "bench_gettime"
  "bench_gettime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gettime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
