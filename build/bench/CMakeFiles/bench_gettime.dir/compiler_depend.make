# Empty compiler generated dependencies file for bench_gettime.
# This may be replaced when dependencies are built.
