file(REMOVE_RECURSE
  "CMakeFiles/bench_play.dir/bench_play.cc.o"
  "CMakeFiles/bench_play.dir/bench_play.cc.o.d"
  "bench_play"
  "bench_play.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_play.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
