# Empty dependencies file for bench_play.
# This may be replaced when dependencies are built.
